//! Supervised execution of experiment points: panic isolation, wall-clock
//! deadlines, deterministic retries, and a crash-safe run journal.
//!
//! Long multi-point sweeps on real accelerator clusters die in ways the
//! points themselves cannot anticipate — a compiler panic, a hung run, a
//! flaky device — and losing an hours-long sweep to one poisoned point is
//! the dominant operational cost of benchmarking (the failure mode
//! LLM-Inference-Bench documents across heterogeneous accelerators). This
//! module wraps every experiment point in a supervisor:
//!
//! - **Panic isolation**: a panicking point becomes a structured
//!   [`PointOutcome::Panicked`] carrying the point's label, instead of
//!   unwinding through the whole sweep.
//! - **Deadlines**: [`SupervisePolicy::deadline`] runs the point under a
//!   watchdog; an overrun is recorded as [`PointOutcome::TimedOut`] and the
//!   runaway attempt is abandoned (its thread is detached, never joined).
//! - **Deterministic retries**: attempts that return a *retryable*
//!   [`PlatformError`] (see [`PlatformError::is_retryable`]) are retried
//!   with backoff; every attempt receives a seed forked off
//!   `(policy.seed, point index)` via [`SplitMix64::fork`], so retry
//!   randomness depends only on the point's identity, never on timing.
//! - **Crash-safe journal**: [`RunJournal`] appends one fsync'd JSONL
//!   record per finished point; a killed run can be resumed with
//!   [`RunJournal::resume`], replaying completed points verbatim so the
//!   final output is byte-identical to an uninterrupted run.
//!
//! The caller folds outcomes into a [`RunReport`] whose rendering is
//! deterministic (input order, fixed formatting), suitable for diffing
//! across runs.

use crate::error::PlatformError;
use crate::jsonl;
use crate::rng::SplitMix64;
use std::any::Any;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Render a caught panic payload as text (panics raise `&str` or `String`
/// payloads in practice; anything else is reported opaquely).
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Run `f` catching panics; a panic becomes `Err` carrying the point's
/// label and the panic message. The lightest supervision primitive — used
/// where a full [`SupervisePolicy`] is overkill (e.g. per-point isolation
/// inside `resilience_sweep`).
///
/// # Errors
///
/// Returns `Err` with a `point `label` panicked: …` message when `f`
/// panicked.
pub fn catch_labeled<R>(label: &str, f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|p| format!("point `{label}` panicked: {}", panic_message(p.as_ref())))
}

/// Run `f`, re-raising any panic with the point's label prefixed so the
/// failure names which sweep point died. Experiments wrap each point in
/// this so `par_map`'s propagated panic is diagnosable.
pub fn with_point_label<R>(label: &str, f: impl FnOnce() -> R) -> R {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(p) => panic!("point `{label}`: {}", panic_message(p.as_ref())),
    }
}

/// How the supervisor treats one experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisePolicy {
    /// Wall-clock budget per attempt; `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Additional attempts allowed after a retryable failure.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff * k` (linear, deterministic in
    /// count though not in wall-clock).
    pub backoff: Duration,
    /// Root seed; attempt seeds are forked from `(seed, point index)`.
    pub seed: u64,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        Self {
            deadline: None,
            max_retries: 0,
            backoff: Duration::from_millis(10),
            seed: 42,
        }
    }
}

/// Structured result of one supervised experiment point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome<U> {
    /// The point produced a value (possibly after retries).
    Completed {
        /// The point's result.
        value: U,
        /// Retries consumed before success (0 = first attempt).
        retries: u32,
    },
    /// The point's value was replayed from a run journal; it was not
    /// re-executed.
    Journaled {
        /// The journaled result.
        value: U,
    },
    /// Every allowed attempt returned an error.
    Failed {
        /// The final attempt's error.
        error: PlatformError,
        /// Retries consumed (0 = the error was not retryable).
        retries: u32,
    },
    /// An attempt panicked; the message carries the point's label.
    Panicked {
        /// Labelled panic message.
        message: String,
    },
    /// An attempt exceeded the wall-clock deadline and was abandoned.
    TimedOut {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
}

impl<U> PointOutcome<U> {
    /// The point's value, when it has one (completed or journaled).
    #[must_use]
    pub fn value(&self) -> Option<&U> {
        match self {
            PointOutcome::Completed { value, .. } | PointOutcome::Journaled { value } => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Whether the sweep got a value for this point.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.value().is_some()
    }

    /// Stable status keyword (also the journal's `status` field).
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            PointOutcome::Completed { .. } => "completed",
            PointOutcome::Journaled { .. } => "journaled",
            PointOutcome::Failed { .. } => "failed",
            PointOutcome::Panicked { .. } => "panicked",
            PointOutcome::TimedOut { .. } => "timed-out",
        }
    }
}

/// Process-wide count of runaway point threads abandoned by the deadline
/// watchdog (see [`abandoned_threads`]).
static ABANDONED_THREADS: AtomicU64 = AtomicU64::new(0);

/// How many runaway point threads this process has abandoned so far.
///
/// [`supervise_point`] cannot join a thread that blew its deadline — it
/// detaches it and moves on — so every `TimedOut` outcome leaks one
/// thread until the point's body eventually returns (or the process
/// exits). This counter is the trace of that leak: it is also published
/// on the obs bus as `supervise.abandoned_threads` (when a point context
/// is open) and surfaced by [`RunReport::render`].
#[must_use]
pub fn abandoned_threads() -> u64 {
    ABANDONED_THREADS.load(Ordering::Relaxed)
}

enum AttemptAbort {
    Panicked(String),
    TimedOut,
}

fn run_attempt<U, F>(
    deadline: Option<Duration>,
    f: &Arc<F>,
    attempt_seed: u64,
) -> Result<Result<U, PlatformError>, AttemptAbort>
where
    U: Send + 'static,
    F: Fn(u64) -> Result<U, PlatformError> + Send + Sync + 'static,
{
    let Some(deadline) = deadline else {
        return catch_unwind(AssertUnwindSafe(|| f(attempt_seed)))
            .map_err(|p| AttemptAbort::Panicked(panic_message(p.as_ref())));
    };
    let (tx, rx) = mpsc::channel();
    let point = Arc::clone(f);
    std::thread::Builder::new()
        .name("dabench-supervised-point".to_owned())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| point(attempt_seed)));
            let _ = tx.send(result);
        })
        .expect("spawn supervised point thread");
    match rx.recv_timeout(deadline) {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(p)) => Err(AttemptAbort::Panicked(panic_message(p.as_ref()))),
        // Timeout: the point thread keeps running detached; we abandon it.
        Err(mpsc::RecvTimeoutError::Timeout) => Err(AttemptAbort::TimedOut),
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(AttemptAbort::Panicked(
            "point thread exited without reporting a result".to_owned(),
        )),
    }
}

/// Run one experiment point under full supervision.
///
/// `f` receives a deterministic attempt seed forked from
/// `(policy.seed, index)` — attempt `k` of point `i` sees the same seed in
/// every run, so retried sweeps reproduce byte-identically. A panicking
/// attempt is not retried (panics indicate bugs, not flakes); retryable
/// [`PlatformError`]s are retried up to `policy.max_retries` times with
/// linear backoff.
pub fn supervise_point<U, F>(
    label: &str,
    index: u64,
    policy: &SupervisePolicy,
    f: F,
) -> PointOutcome<U>
where
    U: Send + 'static,
    F: Fn(u64) -> Result<U, PlatformError> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut rng = SplitMix64::fork(policy.seed, index);
    let mut retries = 0u32;
    loop {
        let attempt_seed = rng.next_u64();
        match run_attempt(policy.deadline, &f, attempt_seed) {
            Ok(Ok(value)) => return PointOutcome::Completed { value, retries },
            Ok(Err(error)) if error.is_retryable() && retries < policy.max_retries => {
                retries += 1;
                std::thread::sleep(policy.backoff * retries);
            }
            Ok(Err(error)) => return PointOutcome::Failed { error, retries },
            Err(AttemptAbort::Panicked(message)) => {
                return PointOutcome::Panicked {
                    message: format!("point `{label}`: {message}"),
                }
            }
            Err(AttemptAbort::TimedOut) => {
                ABANDONED_THREADS.fetch_add(1, Ordering::Relaxed);
                crate::obs::counter("supervise.abandoned_threads", 1.0);
                return PointOutcome::TimedOut {
                    deadline: policy.deadline.unwrap_or_default(),
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Failure injection (test hook)
// ---------------------------------------------------------------------------

/// Environment variable carrying failure-injection clauses.
pub const INJECT_ENV: &str = "DABENCH_INJECT";

/// Which [`PlatformError`] an `err:KIND` injection raises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedErrorKind {
    /// A transient device flake — retryable.
    DeviceFault,
    /// A compiler-service hiccup — retryable.
    CompileFailure,
    /// A deterministic capacity overflow — not retryable.
    OutOfMemory,
    /// A deterministic configuration rejection — not retryable.
    Unsupported,
}

impl InjectedErrorKind {
    fn parse(kind: &str) -> Option<Self> {
        Some(match kind {
            "device_fault" => InjectedErrorKind::DeviceFault,
            "compile_failure" => InjectedErrorKind::CompileFailure,
            "oom" => InjectedErrorKind::OutOfMemory,
            "unsupported" => InjectedErrorKind::Unsupported,
            _ => return None,
        })
    }

    /// The injected error, labelled so reports clearly show it came from
    /// the test hook and not from a platform model.
    #[must_use]
    pub fn to_error(self) -> PlatformError {
        match self {
            InjectedErrorKind::DeviceFault => PlatformError::DeviceFault {
                unit: "injected".into(),
                detail: "transient fault (DABENCH_INJECT)".into(),
            },
            InjectedErrorKind::CompileFailure => {
                PlatformError::CompileFailure("injected compile failure (DABENCH_INJECT)".into())
            }
            InjectedErrorKind::OutOfMemory => PlatformError::OutOfMemory {
                level: "injected".into(),
                required_bytes: 2,
                capacity_bytes: 1,
            },
            InjectedErrorKind::Unsupported => PlatformError::Unsupported(
                "injected unsupported configuration (DABENCH_INJECT)".into(),
            ),
        }
    }
}

/// Test-only failure injection, from the [`INJECT_ENV`] env var: a
/// comma-separated list of `<point>=panic`, `<point>=sleep:SECS`,
/// `<point>=err:KIND[:N]`, `<point>=abort[:N]`, or `<point>=exit:CODE[:N]`
/// clauses. Lets integration tests and the CI crash-recovery jobs exercise
/// panic isolation, deadlines, retryable error paths, and mid-run kills
/// without planting bugs in the experiments themselves.
///
/// `err:KIND` raises the corresponding [`PlatformError`] on **every**
/// attempt; `err:KIND:N` raises it on the first `N` attempts only, so
/// retry-to-success is testable end-to-end (`err:device_fault:2` with
/// `--max-retries 2` succeeds on the third attempt). Kinds:
/// `device_fault`, `compile_failure` (retryable), `oom`, `unsupported`
/// (not retryable).
///
/// `abort` and `exit:CODE` are **process-level** actions fired at point
/// *start* (see [`Injection::fire_process`]), the deterministic stand-in
/// for a SIGKILL'd or OOM-killed shard worker: `abort` raises `SIGABRT`
/// via [`std::process::abort`], `exit:CODE` calls [`std::process::exit`].
/// The counted forms (`abort:N`, `exit:CODE:N`) fire only while the
/// point's durable start count — the number of `started` records already
/// in the shard journal — is below `N`, so a respawned worker survives
/// its second attempt and shard-death-plus-recovery is testable
/// end-to-end without external kill timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// Panic on every attempt.
    Panic,
    /// Sleep for the given seconds on every attempt (deadline / kill
    /// window testing).
    SleepSecs(f64),
    /// Raise a [`PlatformError`] on the first `failures` attempts
    /// (`u32::MAX` = every attempt).
    Err {
        /// Which error to raise.
        kind: InjectedErrorKind,
        /// How many leading attempts fail before the injection clears.
        failures: u32,
    },
    /// `std::process::abort()` at point start while the durable start
    /// count is below `failures` (`u32::MAX` = always).
    Abort {
        /// How many leading process-level starts die before the
        /// injection clears.
        failures: u32,
    },
    /// `std::process::exit(code)` at point start while the durable start
    /// count is below `failures` (`u32::MAX` = always).
    Exit {
        /// The exit code to die with.
        code: u8,
        /// How many leading process-level starts die before the
        /// injection clears.
        failures: u32,
    },
    /// Perturb one observation fed to the `dabench gen` metamorphic
    /// invariant checker so the named invariant is violated
    /// (`gen=violate:<invariant>`) — the seeded counterexample proving
    /// the checker fails loudly. A no-op in the supervised loop itself;
    /// the gen driver reads it from the injection map and applies the
    /// perturbation to its own derived observations.
    Violate(crate::gen::Invariant),
}

impl Injection {
    /// Act on this injection for 0-based attempt number `attempt`:
    /// panic, sleep, or return the injected error.
    ///
    /// # Errors
    ///
    /// The injected [`PlatformError`] while `attempt < failures`.
    ///
    /// # Panics
    ///
    /// [`Injection::Panic`] panics with a message naming the hook.
    pub fn fire(&self, attempt: u32) -> Result<(), PlatformError> {
        match *self {
            Injection::Panic => panic!("injected failure (DABENCH_INJECT)"),
            Injection::SleepSecs(s) => {
                std::thread::sleep(Duration::from_secs_f64(s));
                Ok(())
            }
            Injection::Err { kind, failures } => {
                if attempt < failures {
                    Err(kind.to_error())
                } else {
                    Ok(())
                }
            }
            // Process-level actions are fired by `fire_process` at point
            // start, never inside a supervised attempt (aborting under
            // catch_unwind would still kill the process, but keeping the
            // two planes separate makes counted semantics unambiguous:
            // attempts count retries, starts count process lives).
            Injection::Abort { .. } | Injection::Exit { .. } | Injection::Violate(_) => Ok(()),
        }
    }

    /// [`Injection::fire`] with the attempt number taken from (and
    /// advanced in) `attempts` — the natural shape inside a retried
    /// [`supervise_point`] closure.
    ///
    /// # Errors
    ///
    /// The injected [`PlatformError`], as for [`Injection::fire`].
    pub fn fire_counted(
        &self,
        attempts: &std::sync::atomic::AtomicU32,
    ) -> Result<(), PlatformError> {
        let attempt = attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.fire(attempt)
    }

    /// Act on a **process-level** injection (`abort`, `exit:CODE`) at
    /// point start. `prior_starts` is the number of times this point has
    /// already been started by *some* process — for shard workers, the
    /// count of durable `started` records in the shard journal
    /// ([`Replay::started`]), so the injection survives respawns exactly
    /// `failures` times. Single-process callers pass 0 (the injection
    /// always fires). Attempt-level injections are a no-op here.
    pub fn fire_process(&self, prior_starts: u32) {
        match *self {
            Injection::Abort { failures } if prior_starts < failures => {
                eprintln!("injected abort (DABENCH_INJECT)");
                std::process::abort();
            }
            Injection::Exit { code, failures } if prior_starts < failures => {
                eprintln!("injected exit:{code} (DABENCH_INJECT)");
                std::process::exit(i32::from(code));
            }
            _ => {}
        }
    }
}

/// Parse one `DABENCH_INJECT` clause list (see [`Injection`]).
///
/// # Errors
///
/// A human-readable message naming the offending clause.
pub fn parse_injection_clauses(raw: &str) -> Result<BTreeMap<String, Injection>, String> {
    let mut map = BTreeMap::new();
    for clause in raw.split(',').filter(|c| !c.trim().is_empty()) {
        let (name, action) = clause
            .split_once('=')
            .ok_or_else(|| format!("DABENCH_INJECT `{clause}`: expected name=action"))?;
        let injection =
            if action == "panic" {
                Injection::Panic
            } else if let Some(secs) = action.strip_prefix("sleep:") {
                Injection::SleepSecs(
                    secs.parse()
                        .map_err(|e| format!("DABENCH_INJECT `{clause}`: {e}"))?,
                )
            } else if let Some(spec) = action.strip_prefix("err:") {
                let (kind, failures) = match spec.split_once(':') {
                    Some((kind, count)) => (
                        kind,
                        count
                            .parse::<u32>()
                            .map_err(|e| format!("DABENCH_INJECT `{clause}`: {e}"))?,
                    ),
                    None => (spec, u32::MAX),
                };
                let kind = InjectedErrorKind::parse(kind).ok_or_else(|| {
                    format!(
                        "DABENCH_INJECT `{clause}`: unknown error kind `{kind}` \
                     (expected device_fault, compile_failure, oom, or unsupported)"
                    )
                })?;
                Injection::Err { kind, failures }
            } else if action == "abort" {
                Injection::Abort { failures: u32::MAX }
            } else if let Some(count) = action.strip_prefix("abort:") {
                Injection::Abort {
                    failures: count
                        .parse::<u32>()
                        .map_err(|e| format!("DABENCH_INJECT `{clause}`: {e}"))?,
                }
            } else if let Some(name) = action.strip_prefix("violate:") {
                Injection::Violate(crate::gen::Invariant::parse(name).ok_or_else(|| {
                    format!("DABENCH_INJECT `{clause}`: unknown invariant `{name}`")
                })?)
            } else if let Some(spec) = action.strip_prefix("exit:") {
                let (code, failures) = match spec.split_once(':') {
                    Some((code, count)) => (
                        code,
                        count
                            .parse::<u32>()
                            .map_err(|e| format!("DABENCH_INJECT `{clause}`: {e}"))?,
                    ),
                    None => (spec, u32::MAX),
                };
                Injection::Exit {
                    code: code
                        .parse::<u8>()
                        .map_err(|e| format!("DABENCH_INJECT `{clause}`: {e}"))?,
                    failures,
                }
            } else {
                return Err(format!(
                    "DABENCH_INJECT `{clause}`: expected panic, sleep:SECS, err:KIND[:N], \
                 abort[:N], exit:CODE[:N], or violate:INVARIANT"
                ));
            };
        map.insert(name.trim().to_owned(), injection);
    }
    Ok(map)
}

/// Read and parse the [`INJECT_ENV`] environment variable (empty map when
/// unset).
///
/// # Errors
///
/// As for [`parse_injection_clauses`].
pub fn parse_injections() -> Result<BTreeMap<String, Injection>, String> {
    match std::env::var(INJECT_ENV) {
        Ok(raw) => parse_injection_clauses(&raw),
        Err(_) => Ok(BTreeMap::new()),
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// Journal schema identifier; bump when the line format changes.
pub const JOURNAL_SCHEMA: &str = "dabench-journal-v1";
/// Journal file name inside a run directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Status of a shard-metadata control record (`label` is
/// [`SHARD_CONTROL_LABEL`], `data` describes the shard: id, pid,
/// assigned points). Control records never describe a sweep point and
/// are stripped by replay and merge.
pub const STATUS_SHARD_META: &str = "shard";
/// Status of a heartbeat control record appended periodically by a live
/// shard worker so the parent can distinguish "slow" from "hung".
pub const STATUS_HEARTBEAT: &str = "heartbeat";
/// Status journaled by a shard worker *before* running a point: a
/// durable "I am about to start this" marker. Counting `started` records
/// for a label gives the number of process lives spent on it — the
/// denominator for counted process-level injections
/// ([`Injection::fire_process`]) — and a `started` record with no later
/// final record marks the point a crashed worker died holding.
pub const STATUS_STARTED: &str = "started";
/// Reserved label for shard control records ([`STATUS_SHARD_META`],
/// [`STATUS_HEARTBEAT`]); never a sweep-point label.
pub const SHARD_CONTROL_LABEL: &str = "__shard__";

/// Format one journal record line exactly as [`RunJournal::append`]
/// writes it (no trailing newline). The merge step uses this to rebuild
/// the combined journal byte-identically to a single-process run.
#[must_use]
pub fn format_record(label: &str, status: &str, data: &str) -> String {
    format!(
        "{{\"label\":\"{}\",\"status\":\"{}\",\"data\":\"{}\"}}",
        json_escape(label),
        json_escape(status),
        json_escape(data)
    )
}

pub(crate) fn json_escape(s: &str) -> String {
    jsonl::escape(s)
}

/// Parse one journal line — a flat JSON object with string values only
/// (the shared [`jsonl`] dialect). Returns `None` on any syntactic
/// deviation (the caller decides whether that is a truncated tail or
/// corruption).
fn parse_journal_line(line: &str) -> Option<BTreeMap<String, String>> {
    jsonl::parse_object(line)
}

/// One journal record after the schema header. Fields the line did not
/// carry are `None` — replay treats such records as unfinished points
/// rather than rejecting them, so a forward-compatible reader never
/// drops durable work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Point label (or [`SHARD_CONTROL_LABEL`] for control records).
    pub label: String,
    /// Status keyword (`completed`, `failed`, `started`, …).
    pub status: Option<String>,
    /// Rendered result / failure description / control payload.
    pub data: Option<String>,
}

impl JournalRecord {
    /// Whether this is a shard control record (heartbeat or shard
    /// metadata) rather than a sweep-point record.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.label == SHARD_CONTROL_LABEL
            || matches!(
                self.status.as_deref(),
                Some(STATUS_HEARTBEAT | STATUS_SHARD_META)
            )
    }

    /// Whether this records a point's final fate (`completed` or one of
    /// the failure statuses) as opposed to a `started` marker, a metrics
    /// digest, or a control record.
    #[must_use]
    pub fn is_final(&self) -> bool {
        !self.is_control()
            && !matches!(
                self.status.as_deref(),
                Some(STATUS_STARTED) | Some("metrics")
            )
    }
}

/// Outcome of [`parse_journal`]: the durable records, how many leading
/// bytes of the file they cover, and the torn trailing line (if any)
/// that was discarded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedJournal {
    /// Every durable record after the schema header, in file order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + durable records); the
    /// healing truncation point.
    pub valid_bytes: usize,
    /// A truncated or corrupt *trailing* line that was discarded.
    pub dropped_tail: Option<String>,
}

/// Why [`parse_journal`] rejected a journal outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalParseError {
    /// Line 1 was not the expected schema header.
    BadSchema {
        /// The schema string found, if any.
        found: Option<String>,
    },
    /// An invalid line followed by more records — real corruption, not a
    /// torn tail.
    Corrupt {
        /// 1-based line number of the invalid line.
        line: usize,
        /// Byte offset of the invalid line.
        offset: usize,
        /// The invalid line's text.
        text: String,
    },
}

/// Parse a journal's full contents: schema header, then one record per
/// line. A torn **trailing** line (the expected residue of a `SIGKILL`
/// mid-append) is discarded into [`ParsedJournal::dropped_tail`]; an
/// invalid line **followed by** valid lines is mid-file corruption and a
/// hard error. Shared by [`RunJournal::resume`] and the shard journal
/// merge, so both heal exactly the same way.
///
/// # Errors
///
/// [`JournalParseError`] on a schema mismatch or mid-file corruption.
pub fn parse_journal(contents: &str) -> Result<ParsedJournal, JournalParseError> {
    let mut parsed = ParsedJournal::default();
    let mut line_no = 0usize;
    let mut invalid: Option<(usize, usize, String)> = None;
    let mut rest = contents;
    while !rest.is_empty() {
        let (line, consumed, complete) = match rest.find('\n') {
            Some(pos) => (&rest[..pos], pos + 1, true),
            None => (rest, rest.len(), false),
        };
        line_no += 1;
        let fields = if complete {
            parse_journal_line(line)
        } else {
            None // no trailing newline: the append was cut mid-line
        };
        match fields {
            Some(fields) if invalid.is_none() => {
                if line_no == 1 {
                    let schema = fields.get("schema").cloned();
                    if schema.as_deref() != Some(JOURNAL_SCHEMA) {
                        return Err(JournalParseError::BadSchema { found: schema });
                    }
                } else {
                    parsed.records.push(JournalRecord {
                        label: fields.get("label").cloned().unwrap_or_default(),
                        status: fields.get("status").cloned(),
                        data: fields.get("data").cloned(),
                    });
                }
                parsed.valid_bytes += consumed;
            }
            Some(_) | None if invalid.is_none() => {
                invalid = Some((line_no, parsed.valid_bytes, line.to_owned()));
            }
            _ => {
                // A second line after an invalid one: mid-file corruption.
                let (line, offset, text) = invalid.expect("recorded invalid line");
                return Err(JournalParseError::Corrupt { line, offset, text });
            }
        }
        rest = &rest[consumed..];
    }
    if let Some((_, _, tail)) = invalid {
        parsed.dropped_tail = Some(tail);
    }
    Ok(parsed)
}

/// Render a [`JournalParseError`] as the `io::Error` the journal API
/// reports, naming the offending file.
#[must_use]
pub fn journal_parse_io_error(path: &Path, err: &JournalParseError) -> io::Error {
    match err {
        JournalParseError::BadSchema { found } => io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: unsupported journal schema {:?} (expected {JOURNAL_SCHEMA:?})",
                path.display(),
                found.as_deref().unwrap_or("<missing>")
            ),
        ),
        JournalParseError::Corrupt { line, offset, text } => io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: corrupt journal record at line {line}, byte offset \
                 {offset} ({} bytes, hex {}) is followed by more records; \
                 refusing to resume past possible lost work",
                path.display(),
                text.len(),
                jsonl::hex_snippet(text, 24),
            ),
        ),
    }
}

/// What replaying a journal found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// Completed points: label → journaled result, replayed verbatim.
    pub completed: BTreeMap<String, String>,
    /// Observability digests: label → digest block journaled alongside
    /// the point's `completed` record (see `obs::PointTrace::digest`).
    pub metrics: BTreeMap<String, String>,
    /// Labels journaled with a non-completed status (they will re-run).
    pub unfinished: Vec<String>,
    /// Durable start counts: label → number of [`STATUS_STARTED`]
    /// records. In a shard worker this is how many process lives have
    /// already been spent on the point — fed to
    /// [`Injection::fire_process`] so counted `abort:N` / `exit:CODE:N`
    /// injections clear after `N` worker deaths.
    pub started: BTreeMap<String, u32>,
    /// A truncated or corrupt *trailing* line that was discarded (the
    /// expected residue of a `SIGKILL` mid-append). The journal file is
    /// healed — truncated back to its last valid line — before reuse.
    pub dropped_tail: Option<String>,
}

impl Replay {
    /// Labels with journal records but no completed rendering — the
    /// points a resumed run re-adopts (deduplicated, sorted).
    #[must_use]
    pub fn adopted_labels(&self) -> Vec<String> {
        let mut adopted: Vec<String> = self
            .unfinished
            .iter()
            .filter(|l| !self.completed.contains_key(*l))
            .cloned()
            .collect();
        adopted.sort();
        adopted.dedup();
        adopted
    }

    /// One-line summary of what resuming this journal found, for stderr:
    /// how many points replay verbatim, how many are re-adopted and
    /// re-run, and whether a truncated record was abandoned. Partial
    /// recoveries must be visible, never silent.
    #[must_use]
    pub fn resume_summary(&self) -> String {
        format!(
            "resume: {} replayed from journal, {} adopted (re-run), {} abandoned (truncated tail)",
            self.completed.len(),
            self.adopted_labels().len(),
            usize::from(self.dropped_tail.is_some()),
        )
    }
}

/// Append-only, fsync-on-append run journal (`journal.jsonl` inside a run
/// directory).
///
/// Line 1 is a header `{"schema":"dabench-journal-v1"}`; each subsequent
/// line records one finished point: `{"label":…,"status":…,"data":…}`.
/// `data` holds the point's rendered result for `completed` records and a
/// failure description otherwise. Every append is flushed and fsync'd
/// before returning, so a record is durable once the point is reported
/// done — the journal can lose at most the line being written when the
/// process is killed, which [`RunJournal::resume`] detects and discards.
#[derive(Debug)]
pub struct RunJournal {
    file: File,
    path: PathBuf,
}

impl RunJournal {
    /// Path of the journal inside `dir`.
    #[must_use]
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Start a fresh journal in `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Fails if `dir` already contains a journal (resume it or pick a new
    /// directory — silently overwriting a crashed run's journal would
    /// destroy the state `--resume` needs), or on any I/O error.
    pub fn create(dir: &Path) -> io::Result<Self> {
        Self::create_named(dir, JOURNAL_FILE)
    }

    /// [`RunJournal::create`] with an explicit file name inside `dir` —
    /// how shard workers get their own `journal.shard-K.jsonl` next to
    /// the combined journal.
    ///
    /// # Errors
    ///
    /// As for [`RunJournal::create`].
    pub fn create_named(dir: &Path, file_name: &str) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        if path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already exists; pass --resume to continue it",
                    path.display()
                ),
            ));
        }
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        writeln!(file, "{{\"schema\":\"{JOURNAL_SCHEMA}\"}}")?;
        file.sync_all()?;
        Ok(Self { file, path })
    }

    /// Reopen the journal in `dir`, replaying every durable record.
    ///
    /// A missing or empty journal resumes as a fresh run. A truncated or
    /// unparseable **trailing** line is discarded (reported via
    /// [`Replay::dropped_tail`]) and the file is truncated back to its
    /// last valid line, so subsequent appends stay well-formed. An invalid
    /// line **followed by valid lines** is real corruption and is a hard
    /// error — resuming past it could silently drop completed work.
    ///
    /// # Errors
    ///
    /// I/O errors, a schema mismatch, or mid-file corruption.
    pub fn resume(dir: &Path) -> io::Result<(Self, Replay)> {
        Self::resume_named(dir, JOURNAL_FILE)
    }

    /// [`RunJournal::resume`] with an explicit file name inside `dir` —
    /// how a respawned shard worker re-adopts its predecessor's durable
    /// records (and heals its torn tail).
    ///
    /// # Errors
    ///
    /// As for [`RunJournal::resume`].
    pub fn resume_named(dir: &Path, file_name: &str) -> io::Result<(Self, Replay)> {
        let path = dir.join(file_name);
        if !path.exists() {
            let journal = Self::create_named(dir, file_name)?;
            return Ok((journal, Replay::default()));
        }
        let mut contents = String::new();
        File::open(&path)?.read_to_string(&mut contents)?;

        let parsed = parse_journal(&contents).map_err(|e| journal_parse_io_error(&path, &e))?;
        let mut replay = Replay::default();
        for record in &parsed.records {
            if record.is_control() {
                continue;
            }
            let label = record.label.clone();
            match (record.status.as_deref(), record.data.as_ref()) {
                (Some("completed"), Some(data)) => {
                    replay.completed.insert(label, data.clone());
                }
                (Some("metrics"), Some(data)) => {
                    replay.metrics.insert(label, data.clone());
                }
                (Some(STATUS_STARTED), _) => {
                    *replay.started.entry(label.clone()).or_insert(0) += 1;
                    replay.unfinished.push(label);
                }
                _ => replay.unfinished.push(label),
            }
        }
        replay.dropped_tail = parsed.dropped_tail;

        // Heal a dropped tail: truncate to the last valid record so the
        // next append starts on a fresh line.
        let file = OpenOptions::new().read(true).append(true).open(&path)?;
        if parsed.valid_bytes < contents.len() {
            file.set_len(parsed.valid_bytes as u64)?;
            file.sync_all()?;
        }
        let mut journal = Self { file, path };
        if parsed.valid_bytes == 0 {
            // Empty (or fully discarded) file: rewrite the header.
            writeln!(journal.file, "{{\"schema\":\"{JOURNAL_SCHEMA}\"}}")?;
            journal.file.sync_all()?;
        }
        journal.file.seek(io::SeekFrom::End(0))?;
        Ok((journal, replay))
    }

    /// Durably append one point record (`data` is the rendered result for
    /// completed points, a failure description otherwise).
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures — a journal that cannot persist
    /// must fail loudly, or `--resume` would silently re-run points.
    pub fn append(&mut self, label: &str, status: &str, data: &str) -> io::Result<()> {
        writeln!(self.file, "{}", format_record(label, status, data))?;
        self.file.sync_all()
    }

    /// Where this journal lives on disk.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

/// Deterministic summary of a supervised run: every point's label, status,
/// and failure detail, in the order recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    entries: Vec<(String, &'static str, Option<String>)>,
    retried: usize,
}

impl RunReport {
    /// Fold one point's outcome into the report.
    pub fn record<U>(&mut self, label: &str, outcome: &PointOutcome<U>) {
        let detail = match outcome {
            PointOutcome::Completed { retries, .. } => {
                if *retries > 0 {
                    self.retried += 1;
                    Some(format!("after {retries} retr{}", plural_y(*retries)))
                } else {
                    None
                }
            }
            PointOutcome::Journaled { .. } => None,
            PointOutcome::Failed { error, retries } => Some(if *retries > 0 {
                format!("{error} (after {retries} retr{})", plural_y(*retries))
            } else {
                error.to_string()
            }),
            PointOutcome::Panicked { message } => Some(message.clone()),
            PointOutcome::TimedOut { deadline } => {
                Some(format!("exceeded {:.1} s deadline", deadline.as_secs_f64()))
            }
        };
        self.entries
            .push((label.to_owned(), outcome.status(), detail));
    }

    /// Fold one point in by status keyword rather than live
    /// [`PointOutcome`] — how the shard merge rebuilds the combined
    /// report from journal records alone. Known keywords are interned to
    /// the same `&'static str` values [`PointOutcome::status`] produces
    /// (so [`RunReport::count`] and [`RunReport::render`] agree with a
    /// single-process run); anything unrecognized is recorded as
    /// `failed`, never silently dropped.
    pub fn record_status(&mut self, label: &str, status: &str, detail: Option<String>) {
        let interned = match status {
            "completed" => "completed",
            "journaled" => "journaled",
            "panicked" => "panicked",
            "timed-out" => "timed-out",
            _ => "failed",
        };
        self.entries.push((label.to_owned(), interned, detail));
    }

    /// Number of recorded points with the given status keyword.
    #[must_use]
    pub fn count(&self, status: &str) -> usize {
        self.entries.iter().filter(|(_, s, _)| *s == status).count()
    }

    /// Whether every point produced a value (completed or journaled).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.entries
            .iter()
            .all(|(_, s, _)| *s == "completed" || *s == "journaled")
    }

    /// Render the report (deterministic: recorded order, fixed format).
    /// Each timed-out point leaked one watchdog-abandoned runaway thread
    /// (see [`abandoned_threads`]); when any exist the headline says so.
    #[must_use]
    pub fn render(&self) -> String {
        let timed_out = self.count("timed-out");
        let abandoned = if timed_out > 0 {
            format!(
                " ({timed_out} runaway thread{} abandoned)",
                if timed_out == 1 { "" } else { "s" }
            )
        } else {
            String::new()
        };
        let mut out = format!(
            "run report: {} points — {} completed ({} retried), {} from journal, {} failed, {} panicked, {} timed out{abandoned}\n",
            self.entries.len(),
            self.count("completed"),
            self.retried,
            self.count("journaled"),
            self.count("failed"),
            self.count("panicked"),
            timed_out,
        );
        for (label, status, detail) in &self.entries {
            if *status == "completed" && detail.is_none() || *status == "journaled" {
                continue;
            }
            let detail = detail.as_deref().unwrap_or("");
            out.push_str(&format!("  [{status:>9}] {label}: {detail}\n"));
        }
        out
    }
}

fn plural_y(n: u32) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Mutex;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dabench-supervise-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn panicking_point_becomes_labelled_outcome() {
        let outcome: PointOutcome<u32> =
            supervise_point("fig9 L=72", 3, &SupervisePolicy::default(), |_| {
                panic!("index out of bounds")
            });
        match outcome {
            PointOutcome::Panicked { message } => {
                assert!(message.contains("fig9 L=72"), "{message}");
                assert!(message.contains("index out of bounds"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn retryable_error_is_retried_to_success() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&attempts);
        let policy = SupervisePolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            ..SupervisePolicy::default()
        };
        let outcome = supervise_point("flaky", 0, &policy, move |_| {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(PlatformError::DeviceFault {
                    unit: "pe".into(),
                    detail: "transient".into(),
                })
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(
            outcome,
            PointOutcome::Completed {
                value: 7,
                retries: 2
            }
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn non_retryable_error_fails_immediately() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&attempts);
        let policy = SupervisePolicy {
            max_retries: 5,
            ..SupervisePolicy::default()
        };
        let outcome: PointOutcome<u32> = supervise_point("oom", 0, &policy, move |_| {
            seen.fetch_add(1, Ordering::SeqCst);
            Err(PlatformError::Unsupported("no such strategy".into()))
        });
        assert!(matches!(outcome, PointOutcome::Failed { retries: 0, .. }));
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn attempt_seeds_are_deterministic_per_point_and_attempt() {
        let record = |idx: u64| {
            let seeds = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&seeds);
            let policy = SupervisePolicy {
                max_retries: 2,
                backoff: Duration::from_millis(1),
                ..SupervisePolicy::default()
            };
            let _ = supervise_point("seeded", idx, &policy, move |seed| {
                sink.lock().unwrap().push(seed);
                Err::<u32, _>(PlatformError::DeviceFault {
                    unit: "pe".into(),
                    detail: "flake".into(),
                })
            });
            let seeds = seeds.lock().unwrap().clone();
            seeds
        };
        let a = record(5);
        assert_eq!(a.len(), 3, "1 attempt + 2 retries");
        assert_eq!(a, record(5), "same point, same seeds");
        assert_ne!(a, record(6), "different points draw different streams");
    }

    #[test]
    fn deadline_marks_overrun_and_abandons_the_point() {
        let policy = SupervisePolicy {
            deadline: Some(Duration::from_millis(30)),
            ..SupervisePolicy::default()
        };
        let start = std::time::Instant::now();
        let outcome: PointOutcome<u32> = supervise_point("hung", 0, &policy, |_| {
            std::thread::sleep(Duration::from_secs(30));
            Ok(1)
        });
        assert!(matches!(outcome, PointOutcome::TimedOut { .. }));
        assert!(start.elapsed() < Duration::from_secs(5), "watchdog fired");

        // A fast point under the same deadline completes normally.
        let ok = supervise_point("fast", 0, &policy, |_| Ok(2u32));
        assert_eq!(
            ok,
            PointOutcome::Completed {
                value: 2,
                retries: 0
            }
        );
    }

    #[test]
    fn catch_labeled_and_with_point_label_attach_the_label() {
        assert_eq!(catch_labeled("p", || 3), Ok(3));
        let err = catch_labeled("table1 L=78", || -> u32 { panic!("boom") }).unwrap_err();
        assert!(err.contains("table1 L=78") && err.contains("boom"), "{err}");

        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_point_label("fig7 o3 x=24", || -> u32 { panic!("probe died") })
        }))
        .unwrap_err();
        let msg = panic_message(caught.as_ref());
        assert!(
            msg.contains("fig7 o3 x=24") && msg.contains("probe died"),
            "{msg}"
        );
    }

    #[test]
    fn json_escaping_roundtrips_through_the_parser() {
        let nasty = "line1\nline2\t\"quoted\" \\ back\u{1}slash é";
        let line = format!(
            "{{\"label\":\"{}\",\"status\":\"completed\",\"data\":\"{}\"}}",
            json_escape("p"),
            json_escape(nasty)
        );
        let fields = parse_journal_line(&line).expect("parses");
        assert_eq!(fields.get("data").map(String::as_str), Some(nasty));
    }

    #[test]
    fn journal_roundtrip_replays_completed_points() {
        let dir = temp_dir("roundtrip");
        let mut journal = RunJournal::create(&dir).unwrap();
        journal
            .append("table1", "completed", "Table I\nrow\n")
            .unwrap();
        journal
            .append("fig9", "panicked", "point `fig9`: boom")
            .unwrap();
        journal.append("fig6", "completed", "Fig 6 body").unwrap();
        drop(journal);

        let (_journal, replay) = RunJournal::resume(&dir).unwrap();
        assert_eq!(
            replay.completed.get("table1").map(String::as_str),
            Some("Table I\nrow\n")
        );
        assert_eq!(
            replay.completed.get("fig6").map(String::as_str),
            Some("Fig 6 body")
        );
        assert!(
            !replay.completed.contains_key("fig9"),
            "panicked points re-run"
        );
        assert_eq!(replay.unfinished, vec!["fig9".to_owned()]);
        assert_eq!(replay.dropped_tail, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_records_replay_separately_and_do_not_rerun_points() {
        let dir = temp_dir("metrics");
        let mut journal = RunJournal::create(&dir).unwrap();
        journal.append("table1", "completed", "Table I").unwrap();
        journal
            .append("table1", "metrics", "dabench-obs-v1|0|table1|")
            .unwrap();
        drop(journal);

        let (_journal, replay) = RunJournal::resume(&dir).unwrap();
        assert_eq!(
            replay.completed.get("table1").map(String::as_str),
            Some("Table I")
        );
        assert_eq!(
            replay.metrics.get("table1").map(String::as_str),
            Some("dabench-obs-v1|0|table1|")
        );
        assert!(
            replay.unfinished.is_empty(),
            "a metrics record must not mark its point unfinished: {:?}",
            replay.unfinished
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_reported_and_healed() {
        let dir = temp_dir("tail");
        let mut journal = RunJournal::create(&dir).unwrap();
        journal.append("table1", "completed", "T1").unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        // Simulate a SIGKILL mid-append: a partial record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"label\":\"fig6\",\"status\":\"comp").unwrap();
        drop(f);

        let (mut journal, replay) = RunJournal::resume(&dir).unwrap();
        assert!(replay.dropped_tail.as_deref().unwrap().contains("fig6"));
        assert_eq!(replay.completed.len(), 1);
        // The file was healed: appending and re-resuming is clean.
        journal.append("fig6", "completed", "F6").unwrap();
        drop(journal);
        let (_j, replay2) = RunJournal::resume(&dir).unwrap();
        assert_eq!(replay2.dropped_tail, None);
        assert_eq!(replay2.completed.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = temp_dir("corrupt");
        let mut journal = RunJournal::create(&dir).unwrap();
        journal.append("table1", "completed", "T1").unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let patched = text.replacen(
            "{\"label\":\"table1\"",
            "garbage not json oops\n{\"label\":\"table1\"",
            1,
        );
        std::fs::write(&path, patched).unwrap();
        let err = RunJournal::resume(&dir).unwrap_err();
        assert!(err.to_string().contains("corrupt journal record"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_error_names_line_offset_and_hex_snippet() {
        let dir = temp_dir("corrupt-detail");
        let mut journal = RunJournal::create(&dir).unwrap();
        journal.append("table1", "completed", "T1").unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let patched = text.replacen(
            "{\"label\":\"table1\"",
            "garbage not json oops\n{\"label\":\"table1\"",
            1,
        );
        let offset = patched.find("garbage").unwrap();
        std::fs::write(&path, patched).unwrap();
        let err = RunJournal::resume(&dir).unwrap_err().to_string();
        // Pin the diagnostic format: line number, byte offset, length, and
        // a hex snippet of the offending record.
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains(&format!("byte offset {offset}")), "{err}");
        assert!(err.contains("(21 bytes"), "{err}");
        assert!(
            // "garbage not json oops" as hex
            err.contains("hex 67 61 72 62 61 67 65 20 6e 6f 74 20 6a 73 6f 6e 20 6f 6f 70 73"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_hex_snippet_is_truncated_for_long_records() {
        let dir = temp_dir("corrupt-long");
        let mut journal = RunJournal::create(&dir).unwrap();
        journal.append("table1", "completed", "T1").unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let long_garbage = "X".repeat(200);
        let patched = text.replacen(
            "{\"label\":\"table1\"",
            &format!("{long_garbage}\n{{\"label\":\"table1\""),
            1,
        );
        std::fs::write(&path, patched).unwrap();
        let err = RunJournal::resume(&dir).unwrap_err().to_string();
        assert!(err.contains("(200 bytes"), "{err}");
        assert!(err.contains('…'), "snippet must mark the cut: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_journal() {
        let dir = temp_dir("clobber");
        let _journal = RunJournal::create(&dir).unwrap();
        let err = RunJournal::create(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("--resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let dir = temp_dir("schema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            RunJournal::path_in(&dir),
            "{\"schema\":\"dabench-journal-v999\"}\n",
        )
        .unwrap();
        let err = RunJournal::resume(&dir).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn err_injection_parses_and_fires_retryable_errors() {
        let map = parse_injection_clauses(
            "fig9=err:device_fault, table1=err:compile_failure:2, fig6=err:oom",
        )
        .unwrap();
        assert_eq!(
            map.get("fig9"),
            Some(&Injection::Err {
                kind: InjectedErrorKind::DeviceFault,
                failures: u32::MAX
            })
        );
        assert_eq!(
            map.get("table1"),
            Some(&Injection::Err {
                kind: InjectedErrorKind::CompileFailure,
                failures: 2
            })
        );
        // Counted firing: fails the first 2 attempts, then clears.
        let inj = map["table1"];
        let err = inj.fire(0).unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert!(err.to_string().contains("DABENCH_INJECT"), "{err}");
        assert!(inj.fire(1).is_err());
        assert!(inj.fire(2).is_ok());
        // Non-retryable kinds stay non-retryable.
        assert!(!map["fig6"].fire(0).unwrap_err().is_retryable());
    }

    #[test]
    fn err_injection_rejects_unknown_kinds_and_bad_counts() {
        let err = parse_injection_clauses("fig9=err:gremlins").unwrap_err();
        assert!(err.contains("unknown error kind"), "{err}");
        assert!(parse_injection_clauses("fig9=err:oom:x").is_err());
        assert!(parse_injection_clauses("fig9=explode").is_err());
    }

    #[test]
    fn err_injection_drives_supervised_retry_to_success() {
        let policy = SupervisePolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            ..SupervisePolicy::default()
        };
        let inj = Injection::Err {
            kind: InjectedErrorKind::DeviceFault,
            failures: 2,
        };
        let attempts = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&attempts);
        let outcome = supervise_point("flaky", 0, &policy, move |_| {
            inj.fire_counted(&counter)?;
            Ok(11u32)
        });
        assert_eq!(
            outcome,
            PointOutcome::Completed {
                value: 11,
                retries: 2
            }
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn run_report_counts_and_renders_deterministically() {
        let mut report = RunReport::default();
        report.record(
            "table1",
            &PointOutcome::Completed {
                value: 1u32,
                retries: 0,
            },
        );
        report.record(
            "table2",
            &PointOutcome::Completed {
                value: 2u32,
                retries: 1,
            },
        );
        report.record("fig6", &PointOutcome::Journaled { value: 3u32 });
        report.record(
            "fig9",
            &PointOutcome::<u32>::Panicked {
                message: "point `fig9`: boom".into(),
            },
        );
        report.record(
            "fig11",
            &PointOutcome::<u32>::TimedOut {
                deadline: Duration::from_secs(2),
            },
        );
        assert!(!report.is_clean());
        assert_eq!(report.count("completed"), 2);
        assert_eq!(report.count("journaled"), 1);
        let rendered = report.render();
        assert_eq!(rendered, report.render(), "rendering is deterministic");
        assert!(rendered.contains("5 points"), "{rendered}");
        assert!(rendered.contains("2 completed (1 retried)"), "{rendered}");
        assert!(rendered.contains("1 panicked"), "{rendered}");
        assert!(rendered.contains("exceeded 2.0 s deadline"), "{rendered}");
        assert!(rendered.contains("fig9: point `fig9`: boom"), "{rendered}");
    }
}
