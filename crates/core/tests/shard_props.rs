//! Property tests for the sharded-sweep journal merge
//! (`dabench_core::shard`).
//!
//! Same policy as `bench_props.rs` / `obs_props.rs`: the vendored-deps rule
//! keeps `proptest` out, so these are hand-rolled properties driven by a
//! seeded xorshift* generator — every failure reproduces from its printed
//! seed.
//!
//! Properties covered (docs/sharding.md):
//! - merging randomly partitioned per-shard journals — with random
//!   respawn/retry noise (`started`, heartbeats, shard-meta, transient
//!   failure records), random reassignment of points between shards, and
//!   random torn tails healed by the parser — reproduces the unsharded
//!   `--jobs 1` journal **byte-identically**;
//! - the merge is idempotent: merging the merged journal (alone, or again
//!   with the original shard journals behind it) is a fixed point;
//! - the three-pass precedence (first completed source wins, synthetic
//!   failures next, first durable failure last; last record of each kind
//!   within a source wins) agrees with an independent naive reference on
//!   arbitrary record soups where sources *disagree*;
//! - `plan_shards` is a deterministic round-robin partition: every label
//!   appears exactly once, on shard `i % slots`.

use dabench_core::shard::{merge_journals, plan_shards, MergedPoint, SyntheticFailure};
use dabench_core::supervise::{
    format_record, parse_journal, JournalRecord, ParsedJournal, JOURNAL_SCHEMA,
    SHARD_CONTROL_LABEL, STATUS_HEARTBEAT, STATUS_SHARD_META, STATUS_STARTED,
};
use std::collections::BTreeMap;

/// Small deterministic generator (xorshift*), mirroring `bench_props.rs`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 8
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Random point data exercising every journal escape class: quotes,
/// backslashes, newlines, tabs, control bytes, non-ASCII.
fn gen_data(rng: &mut Rng) -> String {
    let pieces = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "multi\nline\n",
        "tab\there",
        "ctrl\u{1}byte",
        "unicode µs ✓",
        "",
    ];
    let n = 1 + rng.below(4);
    (0..n)
        .map(|_| pieces[rng.below(pieces.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A randomized sweep: unique labels in canonical order, each with
/// canonical completed data and (sometimes) a metrics digest — the output
/// a deterministic worker produces no matter which process runs the point.
struct Sweep {
    order: Vec<String>,
    data: BTreeMap<String, String>,
    metrics: BTreeMap<String, String>,
}

fn gen_sweep(rng: &mut Rng) -> Sweep {
    let n = 1 + rng.below(24) as usize;
    let order: Vec<String> = (0..n).map(|i| format!("point-{i:02}")).collect();
    let mut data = BTreeMap::new();
    let mut metrics = BTreeMap::new();
    for label in &order {
        data.insert(label.clone(), gen_data(rng));
        if rng.chance(60) {
            metrics.insert(label.clone(), format!("digest {}", gen_data(rng)));
        }
    }
    Sweep {
        order,
        data,
        metrics,
    }
}

/// The unsharded `--jobs 1` journal: header, then per point in canonical
/// order a completed record followed by its metrics record.
fn unsharded_journal(sweep: &Sweep) -> String {
    let mut text = format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"}}\n");
    for label in &sweep.order {
        text.push_str(&format_record(label, "completed", &sweep.data[label]));
        text.push('\n');
        if let Some(digest) = sweep.metrics.get(label) {
            text.push_str(&format_record(label, "metrics", digest));
            text.push('\n');
        }
    }
    text
}

/// Build one shard's journal text: shard-meta header, then each assigned
/// label's records with random worker noise — extra process lives
/// (`started` repeated after an injected transient failure), heartbeats
/// between points, and optionally a torn trailing line the parser heals.
fn shard_journal_text(rng: &mut Rng, sweep: &Sweep, shard: usize, labels: &[String]) -> String {
    let mut text = format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"}}\n");
    text.push_str(&format_record(
        SHARD_CONTROL_LABEL,
        STATUS_SHARD_META,
        &format!("shard={shard}"),
    ));
    text.push('\n');
    let mut beat = 0u64;
    for label in labels {
        // Prior process lives that died before finishing the point.
        for life in 0..rng.below(3) {
            text.push_str(&format_record(
                label,
                STATUS_STARTED,
                &format!("life={life}"),
            ));
            text.push('\n');
            if rng.chance(40) {
                text.push_str(&format_record(label, "failed", "transient worker death"));
                text.push('\n');
            }
        }
        if rng.chance(50) {
            beat += 1;
            text.push_str(&format_record(
                SHARD_CONTROL_LABEL,
                STATUS_HEARTBEAT,
                &format!("beat={beat}"),
            ));
            text.push('\n');
        }
        text.push_str(&format_record(label, STATUS_STARTED, "life=final"));
        text.push('\n');
        text.push_str(&format_record(label, "completed", &sweep.data[label]));
        text.push('\n');
        if let Some(digest) = sweep.metrics.get(label) {
            text.push_str(&format_record(label, "metrics", digest));
            text.push('\n');
        }
    }
    text
}

/// Random torn tail: a prefix of what the next record would have been,
/// cut mid-line with no trailing newline (a crash between `write` and
/// durability). `parse_journal` must heal it.
fn append_torn_tail(rng: &mut Rng, text: &mut String) {
    let full = format_record("torn-point", "completed", "never made it");
    let cut = 1 + rng.below(full.len() as u64 - 1) as usize;
    let mut cut = cut;
    while !full.is_char_boundary(cut) {
        cut -= 1;
    }
    text.push_str(&full[..cut]);
}

/// Parse shard text, asserting the torn tail (if any) was healed.
fn parse(text: &str, expect_tail: bool) -> ParsedJournal {
    let parsed = parse_journal(text).expect("generated journal parses");
    assert_eq!(
        parsed.dropped_tail.is_some(),
        expect_tail,
        "torn-tail healing mismatch"
    );
    parsed
}

#[test]
fn random_partitions_merge_byte_identical_to_unsharded() {
    for seed in 0..300u64 {
        let mut rng = Rng::new(seed);
        let sweep = gen_sweep(&mut rng);
        let expected = unsharded_journal(&sweep);

        let shards = 1 + rng.below(6) as usize;
        let mut plan = plan_shards(&sweep.order, shards);
        // Random reassignment: move some points to a different shard, the
        // way the fleet supervisor reassigns a dead worker's remainder.
        if plan.len() > 1 {
            for _ in 0..rng.below(4) {
                let from = rng.below(plan.len() as u64) as usize;
                if let Some(label) = plan[from].pop() {
                    let to = rng.below(plan.len() as u64) as usize;
                    plan[to].push(label);
                }
            }
        }

        let mut sources = vec![ParsedJournal::default()]; // empty combined journal
        for (shard, labels) in plan.iter().enumerate() {
            let mut text = shard_journal_text(&mut rng, &sweep, shard, labels);
            let torn = rng.chance(40);
            if torn {
                append_torn_tail(&mut rng, &mut text);
            }
            sources.push(parse(&text, torn));
        }

        let merged = merge_journals(&sweep.order, &sources, &BTreeMap::new());
        assert_eq!(
            merged.text, expected,
            "seed {seed}: merged journal differs from unsharded --jobs 1 journal"
        );
        assert_eq!(merged.points.len(), sweep.order.len(), "seed {seed}");

        // Idempotence: the merged journal alone is a fixed point, and
        // re-merging it ahead of the original shard journals changes
        // nothing (the combined journal is always source 0 on resume).
        let remerged = parse_journal(&merged.text).expect("merged journal parses");
        let alone = merge_journals(
            &sweep.order,
            std::slice::from_ref(&remerged),
            &BTreeMap::new(),
        );
        assert_eq!(alone.text, expected, "seed {seed}: merge not idempotent");
        let mut again = vec![remerged];
        again.extend(sources.into_iter().skip(1));
        let layered = merge_journals(&sweep.order, &again, &BTreeMap::new());
        assert_eq!(
            layered.text, expected,
            "seed {seed}: re-merge over shards drifts"
        );
    }
}

/// Independent naive reference for the three-pass precedence, scanning
/// every source per label the slow way.
fn naive_merge(
    order: &[String],
    sources: &[ParsedJournal],
    synthetic: &BTreeMap<String, SyntheticFailure>,
) -> BTreeMap<String, MergedPoint> {
    let mut points = BTreeMap::new();
    for label in order {
        let mut chosen: Option<MergedPoint> = None;
        for (si, src) in sources.iter().enumerate() {
            let mut completed = None;
            let mut metrics = None;
            for rec in &src.records {
                if rec.label != *label || rec.is_control() {
                    continue;
                }
                match (rec.status.as_deref(), rec.data.as_deref()) {
                    (Some("completed"), Some(d)) => completed = Some(d),
                    (Some("metrics"), Some(d)) => metrics = Some(d),
                    _ => {}
                }
            }
            if let Some(data) = completed {
                chosen = Some(MergedPoint {
                    status: "completed".to_owned(),
                    data: data.to_owned(),
                    metrics: metrics.map(str::to_owned),
                    source: si,
                });
                break;
            }
        }
        if chosen.is_none() {
            if let Some(s) = synthetic.get(label) {
                chosen = Some(MergedPoint {
                    status: s.status.clone(),
                    data: s.data.clone(),
                    metrics: None,
                    source: usize::MAX,
                });
            }
        }
        if chosen.is_none() {
            for (si, src) in sources.iter().enumerate() {
                let mut last: Option<(&str, &str)> = None;
                for rec in &src.records {
                    if rec.label != *label || !rec.is_final() {
                        continue;
                    }
                    match rec.status.as_deref() {
                        Some("completed") | None => {}
                        Some(status) => last = Some((status, rec.data.as_deref().unwrap_or(""))),
                    }
                }
                if let Some((status, data)) = last {
                    chosen = Some(MergedPoint {
                        status: status.to_owned(),
                        data: data.to_owned(),
                        metrics: None,
                        source: si,
                    });
                    break;
                }
            }
        }
        if let Some(point) = chosen {
            points.insert(label.clone(), point);
        }
    }
    points
}

/// Arbitrary record soup: sources that *disagree* — different data for the
/// same label, failures shadowing completions, control noise, labels
/// outside the canonical order — to pin the precedence rules themselves.
fn gen_soup(rng: &mut Rng, order: &[String]) -> ParsedJournal {
    let statuses = [
        "completed",
        "metrics",
        "failed",
        "panicked",
        "timed-out",
        STATUS_STARTED,
    ];
    let n = rng.below(30) as usize;
    let records = (0..n)
        .map(|_| {
            if rng.chance(10) {
                return JournalRecord {
                    label: SHARD_CONTROL_LABEL.to_owned(),
                    status: Some(if rng.chance(50) {
                        STATUS_HEARTBEAT.to_owned()
                    } else {
                        STATUS_SHARD_META.to_owned()
                    }),
                    data: Some("noise".to_owned()),
                };
            }
            let label = if rng.chance(85) {
                order[rng.below(order.len() as u64) as usize].clone()
            } else {
                "stranger".to_owned()
            };
            JournalRecord {
                label,
                status: Some(statuses[rng.below(statuses.len() as u64) as usize].to_owned()),
                data: if rng.chance(85) {
                    Some(gen_data(rng))
                } else {
                    None
                },
            }
        })
        .collect();
    ParsedJournal {
        records,
        valid_bytes: 0,
        dropped_tail: None,
    }
}

#[test]
fn merge_precedence_matches_naive_reference() {
    for seed in 0..300u64 {
        let mut rng = Rng::new(seed ^ 0x0D15_C04D);
        let n = 1 + rng.below(10) as usize;
        let order: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
        let sources: Vec<ParsedJournal> = (0..1 + rng.below(4))
            .map(|_| gen_soup(&mut rng, &order))
            .collect();
        let mut synthetic = BTreeMap::new();
        for label in &order {
            if rng.chance(25) {
                synthetic.insert(
                    label.clone(),
                    SyntheticFailure {
                        status: "failed".to_owned(),
                        data: format!("shard died holding {label}"),
                    },
                );
            }
        }
        let fast = merge_journals(&order, &sources, &synthetic);
        let slow = naive_merge(&order, &sources, &synthetic);
        assert_eq!(
            fast.points, slow,
            "seed {seed}: folded merge disagrees with naive reference"
        );
    }
}

#[test]
fn plan_shards_is_a_deterministic_round_robin_partition() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed ^ 0x000F_1EE7);
        let n = rng.below(40) as usize;
        let labels: Vec<String> = (0..n).map(|i| format!("L{i}")).collect();
        let shards = rng.below(12) as usize;
        let plan = plan_shards(&labels, shards);
        assert_eq!(
            plan,
            plan_shards(&labels, shards),
            "seed {seed}: not deterministic"
        );
        let slots = shards.max(1).min(labels.len().max(1));
        assert_eq!(plan.len(), slots, "seed {seed}: wrong slot count");
        let mut seen = Vec::new();
        for (k, slot) in plan.iter().enumerate() {
            for label in slot {
                let i: usize = label[1..].parse().expect("label index");
                assert_eq!(
                    i % slots,
                    k,
                    "seed {seed}: {label} not on round-robin shard"
                );
                seen.push(label.clone());
            }
        }
        seen.sort();
        let mut all = labels.clone();
        all.sort();
        assert_eq!(seen, all, "seed {seed}: not a partition");
    }
}
