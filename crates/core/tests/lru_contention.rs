//! Contention properties of the shared LRU result store.
//!
//! The store backs both the Tier-1 memo cache and the serve daemon's
//! response store, so its invariants must hold under exactly the kind of
//! pressure those callers generate: many `par_map` workers hitting one
//! store at once. Three properties are pinned here:
//!
//! 1. **Bounded**: `len() <= capacity` at every observation point, no
//!    matter the interleaving.
//! 2. **No lost inserts**: when capacity covers every distinct key, each
//!    inserted key is retrievable afterwards with the value some thread
//!    wrote for it.
//! 3. **Exact counters**: hits + misses equals the number of `get` calls,
//!    inserts equals the number of `insert` calls, and evictions equals
//!    distinct-key inserts minus resident entries — regardless of thread
//!    interleaving.

use dabench_core::{par_map, set_jobs, LruStore};
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic per-worker operation mix: every worker does `OPS` rounds
/// of get-then-insert over a key space larger than the store capacity.
const WORKERS: usize = 8;
const OPS: usize = 500;
const KEYSPACE: u64 = 64;
const CAPACITY: usize = 16;

#[test]
fn bounded_under_contention_with_exact_counters() {
    set_jobs(WORKERS);
    let store: LruStore<u64, u64> = LruStore::new(CAPACITY);
    let gets = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let evictions_seen = AtomicU64::new(0);
    let bound_violations = AtomicU64::new(0);

    let inputs: Vec<usize> = (0..WORKERS).collect();
    par_map(&inputs, |&worker| {
        // SplitMix-ish per-worker stream so workers collide on keys but
        // stay deterministic in aggregate.
        let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(worker as u64 + 1);
        for _ in 0..OPS {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % KEYSPACE;
            gets.fetch_add(1, Ordering::SeqCst);
            if store.get(&key).is_none() {
                inserts.fetch_add(1, Ordering::SeqCst);
                if store.insert(key, key * 10) {
                    evictions_seen.fetch_add(1, Ordering::SeqCst);
                }
            }
            if store.len() > CAPACITY {
                bound_violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    });

    assert_eq!(
        bound_violations.load(Ordering::SeqCst),
        0,
        "len() exceeded capacity under contention"
    );
    let stats = store.stats();
    assert!(stats.len <= CAPACITY, "final len {} > capacity", stats.len);
    assert_eq!(
        stats.hits + stats.misses,
        gets.load(Ordering::SeqCst),
        "every get is exactly one hit or one miss"
    );
    assert_eq!(
        stats.inserts,
        inserts.load(Ordering::SeqCst),
        "every insert call is counted exactly once"
    );
    // Every eviction the store counted is one an inserting thread was
    // told about, and vice versa — the counter and the return value can
    // never drift apart, whatever the interleaving.
    assert_eq!(
        stats.evictions,
        evictions_seen.load(Ordering::SeqCst),
        "eviction counter drifted from observed evictions"
    );
    assert!(
        stats.evictions <= stats.inserts,
        "evictions {} cannot exceed inserts {}",
        stats.evictions,
        stats.inserts
    );
}

#[test]
fn no_lost_inserts_when_capacity_covers_the_keyspace() {
    set_jobs(WORKERS);
    let store: LruStore<u64, u64> = LruStore::new(KEYSPACE as usize);
    let inputs: Vec<u64> = (0..KEYSPACE).cycle().take(KEYSPACE as usize * 8).collect();
    par_map(&inputs, |&key| {
        store.insert(key, key + 1);
    });
    let stats = store.stats();
    assert_eq!(stats.evictions, 0, "capacity covers keyspace: no evictions");
    assert_eq!(stats.len, KEYSPACE as usize, "every key resident");
    for key in 0..KEYSPACE {
        assert_eq!(store.get(&key), Some(key + 1), "key {key} lost");
    }
}

#[test]
fn occupancy_balances_exactly_with_distinct_keys() {
    // Single-writer-per-key workload where the balance equation is exact:
    // distinct-key inserts == evictions + resident.
    set_jobs(WORKERS);
    let store: LruStore<u64, u64> = LruStore::new(CAPACITY);
    let inputs: Vec<u64> = (0..1000).collect();
    par_map(&inputs, |&key| {
        store.insert(key, key);
    });
    let stats = store.stats();
    assert_eq!(stats.inserts, 1000);
    assert_eq!(
        stats.evictions + stats.len as u64,
        1000,
        "occupancy must balance: {stats:?}"
    );
    assert_eq!(stats.len, CAPACITY);
}
