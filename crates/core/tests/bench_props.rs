//! Property tests for the macro-benchmark statistics (`dabench_core::bench`).
//!
//! Same policy as `obs_props.rs`: the vendored-deps rule keeps `proptest`
//! out, so these are hand-rolled properties driven by a seeded xorshift*
//! generator — every failure reproduces from its printed seed.
//!
//! Properties covered (docs/benchmarking.md):
//! - `median_ns` / `mad_ns` agree with an independent naive reference,
//!   including near-`u64::MAX` inputs (the overflow-safe midpoint);
//! - `trim` keeps at least `trim_floor(n)` samples, keeps a multiset
//!   subset of the input, returns it sorted, and never drops a sample
//!   that deviates less than one it keeps;
//! - `iter_plan` is a pure function of `(kind, quick)` — identical across
//!   calls, never derived from measured time;
//! - `BenchReport::to_json` round-trips through `BenchReport::parse`
//!   byte-exactly for randomized reports, including names that exercise
//!   every JSON escape class.

use dabench_core::bench::{
    iter_plan, mad_ns, median_ns, summarize, trim, trim_floor, BenchKind, BenchRecord, BenchReport,
    CounterRow, IterPlan, PhaseRow, TrajectoryEntry,
};

/// Small deterministic generator (xorshift*), mirroring `obs_props.rs`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 8
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Random sample vector; mixes three scales so trimming has real outliers
/// to chew on, plus occasional near-`u64::MAX` values to provoke naive
/// midpoint overflow.
fn gen_samples(rng: &mut Rng) -> Vec<u64> {
    let n = rng.below(40) as usize;
    (0..n)
        .map(|_| match rng.below(10) {
            0 => u64::MAX - rng.below(1000),
            1..=2 => rng.below(1_000_000_000),
            _ => 1_000_000 + rng.below(10_000),
        })
        .collect()
}

/// Naive reference median: sort, take the middle (mean of the two middle
/// values for even counts), using u128 so the reference itself can't
/// overflow.
fn naive_median(samples: &[u64]) -> u64 {
    let mut s = samples.to_vec();
    s.sort_unstable();
    match s.len() {
        0 => 0,
        n if n % 2 == 1 => s[n / 2],
        n => ((u128::from(s[n / 2 - 1]) + u128::from(s[n / 2])) / 2) as u64,
    }
}

fn naive_mad(samples: &[u64]) -> u64 {
    let m = naive_median(samples);
    let devs: Vec<u64> = samples.iter().map(|&x| x.abs_diff(m)).collect();
    naive_median(&devs)
}

#[test]
fn median_and_mad_match_naive_reference() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        let samples = gen_samples(&mut rng);
        assert_eq!(
            median_ns(&samples),
            naive_median(&samples),
            "median, seed {seed}, samples {samples:?}"
        );
        assert_eq!(
            mad_ns(&samples),
            naive_mad(&samples),
            "mad, seed {seed}, samples {samples:?}"
        );
    }
}

#[test]
fn trim_respects_floor_subset_and_order() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        let samples = gen_samples(&mut rng);
        let kept = trim(&samples);

        // Floor: at least half survive; never more than the input.
        if !samples.is_empty() {
            assert!(
                kept.len() >= trim_floor(samples.len()),
                "floor, seed {seed}: kept {} of {}",
                kept.len(),
                samples.len()
            );
        }
        assert!(kept.len() <= samples.len(), "seed {seed}");

        // Sorted ascending.
        assert!(kept.windows(2).all(|w| w[0] <= w[1]), "order, seed {seed}");

        // Multiset subset: removing kept from a copy of the input works.
        let mut pool = samples.clone();
        for k in &kept {
            let pos = pool.iter().position(|x| x == k);
            assert!(pos.is_some(), "subset, seed {seed}: {k} not in input");
            pool.swap_remove(pos.unwrap());
        }

        // Centrality: no dropped sample deviates less than a kept one.
        let m = median_ns(&samples);
        if let Some(worst_kept) = kept.iter().map(|&x| x.abs_diff(m)).max() {
            for dropped in &pool {
                assert!(
                    dropped.abs_diff(m) >= worst_kept,
                    "centrality, seed {seed}: dropped {dropped} is more central \
                     than a kept sample (median {m})"
                );
            }
        }

        // Zero MAD means nothing is trimmed.
        if mad_ns(&samples) == 0 {
            assert_eq!(kept.len(), samples.len(), "mad=0, seed {seed}");
        }
    }
}

#[test]
fn summarize_is_consistent_with_trim() {
    for seed in 0..100u64 {
        let mut rng = Rng::new(seed);
        let samples = gen_samples(&mut rng);
        let s = summarize(&samples);
        let kept = trim(&samples);
        assert_eq!(s.kept as usize, kept.len(), "seed {seed}");
        assert_eq!(s.median_ns, median_ns(&kept), "seed {seed}");
        assert_eq!(s.mad_ns, mad_ns(&kept), "seed {seed}");
        assert_eq!(s.min_ns, samples.iter().copied().min().unwrap_or(0));
        assert_eq!(s.max_ns, samples.iter().copied().max().unwrap_or(0));
    }
}

#[test]
fn iter_plan_is_pure_and_quick_is_smaller() {
    let kinds = [BenchKind::Experiment, BenchKind::Compile, BenchKind::Micro];
    for kind in kinds {
        for quick in [false, true] {
            // Purity: repeated calls agree exactly.
            let a = iter_plan(kind, quick);
            let b = iter_plan(kind, quick);
            assert_eq!((a.warmup, a.iters, a.inner), (b.warmup, b.iters, b.inner));
            assert!(a.iters >= 1 && a.inner >= 1);
        }
        // `--quick` never does more work than the full plan.
        let full = iter_plan(kind, false);
        let quick = iter_plan(kind, true);
        assert!(quick.warmup <= full.warmup, "{kind:?}");
        assert!(quick.iters < full.iters, "{kind:?}");
        assert!(quick.inner <= full.inner, "{kind:?}");
    }
}

/// Name pool for the round-trip test; the tail entries exercise the JSON
/// escape classes (quote, backslash, control characters, non-ASCII).
const NAMES: [&str; 8] = [
    "table1",
    "wse_compile_deep",
    "cache_lookup_hit",
    "quote\"inside",
    "back\\slash",
    "tab\tand\nnewline",
    "null\u{0}byte",
    "uni—code·µ",
];

fn gen_record(rng: &mut Rng) -> BenchRecord {
    let kinds = [BenchKind::Experiment, BenchKind::Compile, BenchKind::Micro];
    let kind = kinds[rng.below(3) as usize];
    let plan = IterPlan {
        warmup: rng.below(10) as u32,
        iters: 1 + rng.below(50) as u32,
        inner: 1 + rng.below(2000) as u32,
    };
    let mut samples = gen_samples(rng);
    if samples.is_empty() {
        samples.push(rng.below(1_000_000));
    }
    let phases = (0..rng.below(4))
        .map(|_| PhaseRow {
            phase: NAMES[rng.below(8) as usize].to_owned(),
            spans: rng.below(10_000),
        })
        .collect();
    // Dyadic totals round-trip exactly through the `{v:?}` f64 writer.
    let counters = (0..rng.below(4))
        .map(|_| CounterRow {
            key: NAMES[rng.below(8) as usize].to_owned(),
            total: (rng.below(1 << 20) as f64 - (1 << 19) as f64) / 64.0,
        })
        .collect();
    BenchRecord {
        name: NAMES[rng.below(8) as usize].to_owned(),
        kind,
        plan,
        summary: summarize(&samples),
        phases,
        counters,
    }
}

#[test]
fn report_json_round_trips_byte_exactly() {
    for seed in 0..100u64 {
        let mut rng = Rng::new(seed);
        let report = BenchReport {
            quick: rng.below(2) == 1,
            benchmarks: (0..rng.below(5)).map(|_| gen_record(&mut rng)).collect(),
            trajectory: (0..rng.below(5))
                .map(|_| TrajectoryEntry {
                    bench: NAMES[rng.below(8) as usize].to_owned(),
                    label: NAMES[rng.below(8) as usize].to_owned(),
                    median_ns: rng.next(),
                })
                .collect(),
        };
        let json = report.to_json();
        let parsed = BenchReport::parse(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{json}"));
        assert_eq!(parsed, report, "seed {seed}: structural round-trip");
        assert_eq!(parsed.to_json(), json, "seed {seed}: byte round-trip");
    }
}
