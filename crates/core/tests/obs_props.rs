//! Property tests for the observability recorder (`dabench_core::obs`).
//!
//! The vendored-deps policy rules out `proptest`, so these are hand-rolled
//! properties: a seeded generator produces random instrumentation
//! "programs" (nested spans, counters, slices, panics), the real recorder
//! executes them — through `par_map`, exactly like production code — and
//! the resulting traces are checked against structural invariants and an
//! independently computed model.
//!
//! Invariants covered (docs/observability.md):
//! - spans are well-nested per point context, every `Begin` has a matching
//!   `End`, and logical timestamps are strictly increasing — even when the
//!   instrumented code panics mid-span;
//! - per-phase counter totals reconcile exactly with a replay of the
//!   generating program;
//! - the digest serialization round-trips every trace byte-exactly.
//!
//! The recorder is process-global, so every test takes `session()` — a
//! mutex that serializes recorder use across the harness's test threads.

use dabench_core::obs::{self, Event, Phase, PointTrace};
use dabench_core::par_map;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

/// Exclusive recorder session: drains stale state on entry, disables and
/// drains again on drop (even when the test body panics).
struct Session(#[allow(dead_code)] MutexGuard<'static, ()>);

fn session() -> Session {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable();
    let _ = obs::take();
    obs::enable();
    Session(guard)
}

impl Drop for Session {
    fn drop(&mut self) {
        obs::disable();
        let _ = obs::take();
    }
}

/// Small deterministic generator (xorshift*); no external crates, no
/// global entropy, so every failure reproduces from its printed seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 8
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const PHASES: [Phase; 5] = [
    Phase::Compile,
    Phase::Place,
    Phase::Partition,
    Phase::Execute,
    Phase::Collect,
];

/// Name pool; the last entries exercise every digest escape character.
const NAMES: [&str; 6] = [
    "alpha",
    "beta.gamma",
    "x",
    "pipe|and;semi",
    "colon:percent%",
    "new\nline",
];

/// One step of a random instrumentation program.
#[derive(Debug, Clone)]
enum Op {
    Span(Phase, &'static str, Vec<Op>),
    Counter(&'static str, f64),
    Slice(&'static str, &'static str, f64, f64),
}

fn gen_ops(rng: &mut Rng, depth: u64, budget: &mut u64) -> Vec<Op> {
    let mut ops = Vec::new();
    while *budget > 0 && rng.below(4) != 0 {
        *budget -= 1;
        let op = match rng.below(if depth < 4 { 3 } else { 2 }) {
            // Dyadic values: floating sums reassociate exactly, so the
            // model total can be compared with `==`.
            0 => Op::Counter(NAMES[rng.below(6) as usize], {
                (rng.below(4000) as f64 - 2000.0) / 8.0
            }),
            1 => Op::Slice(
                NAMES[rng.below(6) as usize],
                NAMES[rng.below(6) as usize],
                rng.below(1000) as f64 / 16.0,
                rng.below(100) as f64 / 16.0,
            ),
            _ => Op::Span(
                PHASES[rng.below(5) as usize],
                NAMES[rng.below(6) as usize],
                gen_ops(rng, depth + 1, budget),
            ),
        };
        ops.push(op);
    }
    ops
}

/// Execute a program against the real recorder.
fn exec(ops: &[Op]) {
    for op in ops {
        match op {
            Op::Span(phase, name, kids) => obs::span(*phase, name, || exec(kids)),
            Op::Counter(key, value) => obs::counter(key, *value),
            Op::Slice(track, name, start, dur) => obs::slice(track, name, *start, *dur),
        }
    }
}

/// Model of `counter_rows`: replay the program and accumulate per-phase
/// counter totals in the same (phase, key) order and the same summation
/// order the recorder uses.
fn model_counters(ops: &[Op], phase: Option<Phase>, acc: &mut BTreeMap<(&str, &str), (u64, f64)>) {
    for op in ops {
        match op {
            Op::Span(p, _, kids) => model_counters(kids, Some(*p), acc),
            Op::Counter(key, value) => {
                let cell = acc
                    .entry((phase.map_or("-", Phase::as_str), key))
                    .or_insert((0, 0.0));
                cell.0 += 1;
                cell.1 += value;
            }
            Op::Slice(..) => {}
        }
    }
}

#[test]
fn random_programs_produce_well_formed_traces() {
    let _s = session();
    for seed in 0..60u64 {
        let mut rng = Rng::new(seed);
        let programs: Vec<Vec<Op>> = (0..4)
            .map(|_| {
                let mut budget = 24;
                gen_ops(&mut rng, 0, &mut budget)
            })
            .collect();
        par_map(&programs, |p| exec(p));
        for trace in obs::take() {
            trace
                .check_well_formed()
                .unwrap_or_else(|e| panic!("seed {seed}, point {}: {e}", trace.path_string()));
        }
    }
}

#[test]
fn counter_totals_reconcile_with_a_program_replay() {
    let _s = session();
    for seed in 100..160u64 {
        let mut rng = Rng::new(seed);
        let programs: Vec<Vec<Op>> = (0..4)
            .map(|_| {
                let mut budget = 24;
                gen_ops(&mut rng, 0, &mut budget)
            })
            .collect();
        par_map(&programs, |p| exec(p));
        let traces = obs::take();

        // `take()` sorts by path = input order, and events replay in
        // program order, so model and recorder sum in the same order —
        // the totals must match bit for bit, not just approximately.
        let mut expected: BTreeMap<(&str, &str), (u64, f64)> = BTreeMap::new();
        for p in &programs {
            model_counters(p, None, &mut expected);
        }
        let rows = obs::counter_rows(&traces);
        assert_eq!(rows.len(), expected.len(), "seed {seed}");
        for (row, ((phase, key), (samples, total))) in rows.iter().zip(&expected) {
            assert_eq!(row.phase, *phase, "seed {seed}");
            assert_eq!(&row.name, key, "seed {seed}");
            assert_eq!(row.samples, *samples, "seed {seed} {key}");
            assert!(
                row.total == *total,
                "seed {seed} {key}: {} != {total}",
                row.total
            );
        }
    }
}

#[test]
fn panicking_programs_still_close_every_span() {
    let _s = session();
    for seed in 200..240u64 {
        let mut rng = Rng::new(seed);
        let mut budget = 24;
        let program = gen_ops(&mut rng, 0, &mut budget);
        let fuse = rng.below(8);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            obs::with_point(seed, "prop", || {
                let mut remaining = fuse;
                burn(&program, &mut remaining);
            })
        }));
        // Deep programs panic mid-span; shallow ones run to completion.
        // Either way every flushed trace must be structurally valid.
        let _ = caught;
        for trace in obs::take() {
            trace
                .check_well_formed()
                .unwrap_or_else(|e| panic!("seed {seed} (fuse {fuse}): {e}"));
        }
    }
}

/// Like `exec`, but panics once `fuse` operations have run.
fn burn(ops: &[Op], fuse: &mut u64) {
    for op in ops {
        if *fuse == 0 {
            panic!("injected property-test panic");
        }
        *fuse -= 1;
        match op {
            Op::Span(phase, name, kids) => obs::span(*phase, name, || burn(kids, fuse)),
            Op::Counter(key, value) => obs::counter(key, *value),
            Op::Slice(track, name, start, dur) => obs::slice(track, name, *start, *dur),
        }
    }
}

#[test]
fn digests_round_trip_recorded_traces() {
    let _s = session();
    for seed in 300..360u64 {
        let mut rng = Rng::new(seed);
        let programs: Vec<Vec<Op>> = (0..3)
            .map(|_| {
                let mut budget = 20;
                gen_ops(&mut rng, 0, &mut budget)
            })
            .collect();
        par_map(&programs, |p| exec(p));
        for trace in obs::take() {
            let digest = trace.digest();
            assert!(!digest.contains('\n'), "digest must be one journal line");
            let parsed = PointTrace::parse_digest(&digest)
                .unwrap_or_else(|| panic!("seed {seed}: unparseable digest {digest:?}"));
            assert_eq!(parsed, trace, "seed {seed}: digest round-trip drifted");
        }
    }
}

#[test]
fn digests_round_trip_adversarial_values() {
    // Hand-built traces cover what the generator cannot: extreme floats,
    // negative zero, subnormals, and escape-heavy labels. (NaN is excluded
    // by construction — counters record measurements, and `PointTrace`
    // equality is derived `PartialEq`.)
    let values = [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        5e-324,
        f64::MAX,
        -f64::MAX,
        0.1 + 0.2,
        1.0 / 3.0,
        -123456789.015625,
    ];
    let mut events = Vec::new();
    for (i, v) in values.iter().enumerate() {
        events.push(Event::Begin {
            phase: PHASES[i % 5],
            name: format!("odd%name|{i};with:specials\nline"),
            ts: 2 * i as u64 + 1,
        });
        events.push(Event::Counter {
            phase: Some(PHASES[i % 5]),
            key: "k%7c|".to_owned(),
            value: *v,
            ts: 2 * i as u64 + 2,
        });
    }
    for (i, _) in values.iter().enumerate().rev() {
        events.push(Event::End {
            phase: PHASES[i % 5],
            name: format!("odd%name|{i};with:specials\nline"),
            ts: 100 + i as u64,
        });
    }
    events.push(Event::Slice {
        track: "tr%:;ack".to_owned(),
        name: "sl|ice".to_owned(),
        start_us: u64::MAX,
        dur_us: 0,
    });
    let trace = PointTrace {
        path: vec![0, 7, u64::MAX],
        label: "label with %|;:\n everything".to_owned(),
        events,
    };
    let digest = trace.digest();
    assert!(!digest.contains('\n'));
    let parsed = PointTrace::parse_digest(&digest).expect("parse adversarial digest");
    assert_eq!(parsed, trace);
}
