//! Property tests for the scenario-space generator (`dabench_core::gen`).
//!
//! Same policy as `bench_props.rs` / `shard_props.rs`: the vendored-deps
//! rule keeps `proptest` out, so these are hand-rolled properties driven
//! by a seeded xorshift* generator — every failure reproduces from its
//! printed seed.
//!
//! Properties covered (docs/generation.md):
//! - the sampler is a pure function: `sample(tier, seed, index)` is
//!   reproducible call-to-call and agrees with `population`;
//! - labels round-trip: `parse_label(format_label(..))` is the identity,
//!   and malformed labels are rejected, never mis-parsed;
//! - tier ordering: a strictly higher tier has ≥ mean model FLOPs and
//!   ≥ mean fault density over matching seeded populations;
//! - every sampled scenario is internally consistent (heads divide
//!   hidden, kv_heads divide heads, infer scenarios decode, train
//!   scenarios don't, fault fractions in range);
//! - the invariant checkers accept known-good observations and reject
//!   hand-built counterexamples, naming the violated invariant.

use dabench_core::gen::{
    check_batch_ladder, check_determinism, check_fault_monotone, check_fp8_kv, format_label,
    parse_label, population, sample, Invariant, LadderPoint, ScenarioKind, Tier,
};

/// Small deterministic generator (xorshift*), mirroring `bench_props.rs`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const CASES: u64 = 32;

#[test]
fn sampler_is_a_pure_function() {
    let mut rng = Rng::new(0xD0_0001);
    for case in 0..CASES {
        let tier = Tier::ALL[rng.below(Tier::ALL.len() as u64) as usize];
        let seed = rng.next();
        let index = rng.below(1000);
        let a = sample(tier, seed, index);
        let b = sample(tier, seed, index);
        assert_eq!(a, b, "case {case}: same coordinates, different scenario");
        assert_eq!(
            a.label(),
            format_label(tier, seed, index),
            "case {case}: label drifted from its coordinates"
        );
    }
}

#[test]
fn population_agrees_with_per_index_sampling() {
    let mut rng = Rng::new(0xD0_0002);
    for case in 0..CASES {
        let tier = Tier::ALL[rng.below(Tier::ALL.len() as u64) as usize];
        let seed = rng.next();
        let count = 1 + rng.below(40);
        let pop = population(tier, seed, count);
        assert_eq!(pop.len() as u64, count, "case {case}");
        for (i, s) in pop.iter().enumerate() {
            assert_eq!(*s, sample(tier, seed, i as u64), "case {case} index {i}");
        }
    }
}

#[test]
fn labels_round_trip_and_reject_malformed_input() {
    let mut rng = Rng::new(0xD0_0003);
    for _ in 0..CASES {
        let tier = Tier::ALL[rng.below(Tier::ALL.len() as u64) as usize];
        let (seed, index) = (rng.next(), rng.below(10_000));
        let label = format_label(tier, seed, index);
        assert_eq!(parse_label(&label), Some((tier, seed, index)), "{label}");
        // A label is comma-free by construction: shard workers join
        // point lists with commas on the command line.
        assert!(!label.contains(','), "{label}");
    }
    for bad in [
        "",
        "gen",
        "gen:baby",
        "gen:baby:s1",
        "gen:baby:s1:i2:x",
        "gen:nope:s1:i2",
        "gen:baby:1:i2",
        "gen:baby:s1:2",
        "gen:baby:sNaN:i2",
        "table1",
        "Gen:baby:s1:i2",
    ] {
        assert_eq!(parse_label(bad), None, "{bad:?} must not parse");
    }
}

/// Mean model FLOPs and mean fault density of a seeded population.
fn tier_means(tier: Tier, seed: u64, count: u64) -> (f64, f64) {
    let pop = population(tier, seed, count);
    let n = pop.len() as f64;
    let flops = pop.iter().map(|s| s.flops()).sum::<f64>() / n;
    let density = pop.iter().map(|s| s.faults.density()).sum::<f64>() / n;
    (flops, density)
}

#[test]
fn higher_tiers_mean_bigger_models_and_denser_faults() {
    // The defining property of the difficulty ladder: for every adjacent
    // tier pair, the higher tier's population has >= mean FLOPs and
    // >= mean fault density. Checked over several seeds with a population
    // large enough to wash out sampling noise.
    let mut rng = Rng::new(0xD0_0004);
    for _ in 0..6 {
        let seed = rng.next();
        let means: Vec<(f64, f64)> = Tier::ALL.iter().map(|t| tier_means(*t, seed, 96)).collect();
        for w in means.windows(2) {
            let ((lo_flops, lo_density), (hi_flops, hi_density)) = (w[0], w[1]);
            assert!(
                hi_flops >= lo_flops,
                "seed {seed}: mean FLOPs fell between adjacent tiers ({lo_flops:.3e} -> {hi_flops:.3e})"
            );
            assert!(
                hi_density >= lo_density,
                "seed {seed}: fault density fell between adjacent tiers ({lo_density:.4} -> {hi_density:.4})"
            );
        }
    }
}

#[test]
fn every_sampled_scenario_is_internally_consistent() {
    let mut rng = Rng::new(0xD0_0005);
    for _ in 0..CASES {
        let tier = Tier::ALL[rng.below(Tier::ALL.len() as u64) as usize];
        let seed = rng.next();
        for s in population(tier, seed, 48) {
            let label = s.label();
            assert!(
                s.hidden % s.heads == 0,
                "{label}: heads don't divide hidden"
            );
            assert!(
                s.heads % s.kv_heads == 0,
                "{label}: kv_heads don't divide heads"
            );
            assert!(s.batch >= 1 && s.seq >= 1 && s.layers >= 1, "{label}");
            assert!(
                (0.0..=1.0).contains(&s.faults.dead_fraction),
                "{label}: dead fraction out of range"
            );
            assert!(
                (0.0..=1.0).contains(&s.faults.link_retained),
                "{label}: link retention out of range"
            );
            match s.kind {
                ScenarioKind::Train => {
                    assert_eq!(s.decode, 0, "{label}: training scenario decodes");
                }
                ScenarioKind::Infer => {
                    assert!(s.decode > 0, "{label}: serving scenario never decodes");
                    assert_eq!(s.parallelism, 1, "{label}: serving is single-chip");
                    assert!(s.faults.is_healthy(), "{label}: serving has no fault model");
                    // The workload must construct: the sampler's output
                    // feeds InferenceWorkload::new unchecked downstream.
                    let _ = s.inference_workload();
                }
            }
            let _ = s.training_workload();
        }
    }
}

// ---------------------------------------------------------------------------
// Invariant checker self-consistency: known-good passes, hand-built
// counterexamples fail with the right invariant named.
// ---------------------------------------------------------------------------

#[test]
fn fault_monotone_checker_separates_good_from_bad() {
    assert!(check_fault_monotone("wse", "s", 100.0, 99.0).is_none());
    assert!(check_fault_monotone("wse", "s", 100.0, 100.0).is_none());
    let v = check_fault_monotone("wse", "s", 100.0, 101.0).expect("violation");
    assert_eq!(v.invariant, Invariant::FaultMonotone);
    assert!(v.to_string().contains("fault_monotone"), "{v}");
}

#[test]
fn fp8_checker_requires_strictly_smaller_kv_and_unchanged_weights() {
    assert!(check_fp8_kv("s", 1000, 500, 70, 70).is_none());
    let equal = check_fp8_kv("s", 1000, 1000, 70, 70).expect("equal KV is a violation");
    assert_eq!(equal.invariant, Invariant::Fp8KvSmaller);
    let bigger = check_fp8_kv("s", 1000, 1001, 70, 70).expect("bigger KV is a violation");
    assert_eq!(bigger.invariant, Invariant::Fp8KvSmaller);
    // KV precision must not leak into weight memory.
    let weights = check_fp8_kv("s", 1000, 500, 70, 35).expect("weight drift is a violation");
    assert_eq!(weights.invariant, Invariant::Fp8KvSmaller);
}

fn rung(batch: u64, level: &str, tps: f64) -> LadderPoint {
    LadderPoint {
        batch,
        level: Some(level.to_owned()),
        tokens_per_s: Some(tps),
    }
}

fn oom(batch: u64) -> LadderPoint {
    LadderPoint {
        batch,
        level: None,
        tokens_per_s: None,
    }
}

#[test]
fn batch_ladder_checker_accepts_monotone_ladders() {
    let ladder = [
        rung(1, "hbm", 10.0),
        rung(2, "hbm", 19.0),
        rung(4, "hbm", 30.0),
        oom(8),
    ];
    assert!(check_batch_ladder("gpu", "s", &ladder).is_empty());
}

#[test]
fn batch_ladder_checker_flags_throughput_drops_within_a_level() {
    let ladder = [rung(1, "hbm", 10.0), rung(2, "hbm", 5.0)];
    let vs = check_batch_ladder("gpu", "s", &ladder);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].invariant, Invariant::BatchMonotone);
}

#[test]
fn batch_ladder_checker_exempts_level_switches() {
    // The IPU cliff: tile-sram throughput may collapse when the next
    // batch spills to external DDR. That is a level switch, not a
    // monotonicity violation.
    let ladder = [rung(1, "tile-sram", 100.0), rung(2, "external-ddr", 3.0)];
    assert!(check_batch_ladder("ipu", "s", &ladder).is_empty());
}

#[test]
fn batch_ladder_checker_flags_fits_after_the_wall() {
    let ladder = [rung(1, "hbm", 10.0), oom(2), rung(4, "hbm", 30.0)];
    let vs = check_batch_ladder("gpu", "s", &ladder);
    assert!(
        vs.iter()
            .any(|v| v.invariant == Invariant::OomWallConsistent),
        "{vs:?}"
    );
}

#[test]
fn determinism_checker_names_the_differing_byte() {
    assert!(check_determinism("s", "same text", "same text").is_none());
    let v = check_determinism("s", "abcdef", "abcxef").expect("violation");
    assert_eq!(v.invariant, Invariant::SeedDeterminism);
    assert!(v.detail.contains("byte 3"), "{}", v.detail);
    let len = check_determinism("s", "abc", "abcd").expect("length drift");
    assert_eq!(len.invariant, Invariant::SeedDeterminism);
}

#[test]
fn random_perturbations_of_valid_records_always_trip_determinism() {
    let mut rng = Rng::new(0xD0_0006);
    let original = "gen-v1 label=gen:baby:s1:i0 kind=train\n  wse batch=2 tokens_per_s=1.0e3\n";
    for case in 0..CASES {
        let mut bytes = original.as_bytes().to_vec();
        let pos = rng.below(bytes.len() as u64) as usize;
        let flip = 1 + (rng.below(255) as u8);
        bytes[pos] ^= flip;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        assert!(
            check_determinism("s", original, &mutated).is_some(),
            "case {case}: flip at byte {pos} went unnoticed"
        );
    }
}
