//! Cross-platform resilience invariants, checked by deterministic
//! property sampling.

use dabench_core::Degradable;
use dabench_faults::{FaultPlan, PlanSpec, PlatformKind};
use dabench_ipu::Ipu;
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::{compile_degraded, Wse, WseCompilerParams, WseSpec};
use proptest::prelude::*;

fn workload(batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, 12),
        batch,
        1024,
        Precision::Fp16,
    )
}

fn platforms() -> Vec<(Box<dyn Degradable>, u64)> {
    vec![
        (Box::new(Wse::default()), 256),
        (Box::new(Rdu::with_mode(CompilationMode::O1)), 8),
        (Box::new(Rdu::with_mode(CompilationMode::O3)), 8),
        (Box::new(Ipu::default()), 64),
    ]
}

fn spec(dead: f64, link: f64, stalls: u32, drop: u32) -> PlanSpec {
    PlanSpec {
        dead_fraction: dead,
        link_retained: link,
        transient_stalls: stalls,
        dropped_devices: drop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_seed_yields_identical_plans(seed in 0u64..1_000_000, dead in 0.0f64..0.3) {
        let s = spec(dead, 0.9, 2, 1);
        for kind in [PlatformKind::Wse, PlatformKind::Rdu, PlatformKind::Ipu] {
            let a = FaultPlan::generate(kind, &s, seed);
            let b = FaultPlan::generate(kind, &s, seed);
            prop_assert_eq!(a.fault_set(), b.fault_set());
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn wse_remap_never_overlaps_dead_rects(seed in 0u64..10_000, dead in 0.01f64..0.2) {
        let wse_spec = WseSpec::cs2();
        let plan = FaultPlan::generate(PlatformKind::Wse, &spec(dead, 1.0, 0, 0), seed);
        let faults = plan.fault_set();
        let intervals: Vec<(u64, u64)> = faults
            .dead_rects()
            .map(|r| r.column_interval(wse_spec.grid_cols))
            .collect();
        let w = workload(256);
        if let Ok((comp, _)) = compile_degraded(&wse_spec, &WseCompilerParams::default(), &w, &faults) {
            prop_assert!(
                !comp.placement.overlaps_any(&intervals),
                "placement intersects a dead band (seed {}, dead {})", seed, dead
            );
        }
    }
}

#[test]
fn fault_kind_agrees_with_name_inference() {
    // The platform-reported geometry must match what the (legacy) name
    // matcher would have guessed for every shipped platform.
    for (platform, _) in platforms() {
        assert_eq!(
            Some(PlatformKind::from_fault_kind(platform.fault_kind())),
            PlatformKind::infer(platform.name()),
            "{}",
            platform.name()
        );
    }
}

proptest! {
    // Each case degrades every platform; keep the sample count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn degraded_throughput_never_exceeds_healthy(seed in 0u64..10_000, dead in 0.0f64..0.2) {
        let s = spec(dead, 0.85, 1, 1);
        for (platform, batch) in platforms() {
            let kind = PlatformKind::from_fault_kind(platform.fault_kind());
            let plan = FaultPlan::generate(kind, &s, seed);
            let w = workload(batch);
            if let Ok(d) = platform.degrade(&w, &plan.fault_set()) {
                prop_assert!(
                    d.degraded.throughput_tokens_per_s
                        <= d.healthy.throughput_tokens_per_s * (1.0 + 1e-9),
                    "{}: retention {} > 1 (seed {}, dead {})",
                    platform.name(), d.throughput_retention(), seed, dead
                );
                prop_assert!(d.recovery_cost.total_s() >= 0.0);
            }
        }
    }

    #[test]
    fn same_seed_yields_identical_degraded_profiles(seed in 0u64..10_000) {
        let s = spec(0.05, 0.9, 1, 1);
        for (platform, batch) in platforms() {
            let kind = PlatformKind::from_fault_kind(platform.fault_kind());
            let w = workload(batch);
            let a = platform.degrade(&w, &FaultPlan::generate(kind, &s, seed).fault_set());
            let b = platform.degrade(&w, &FaultPlan::generate(kind, &s, seed).fault_set());
            match (a, b) {
                (Ok(pa), Ok(pb)) => {
                    prop_assert_eq!(pa.degraded, pb.degraded);
                    prop_assert_eq!(pa.recovery_cost, pb.recovery_cost);
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => prop_assert!(false, "outcomes diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
            }
        }
    }
}
