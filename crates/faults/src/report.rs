//! The resilience report: what a fault sweep found.

use crate::plan::FaultPlan;

/// Outcome of one sweep point (one fault fraction).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Dead-fabric fraction injected.
    pub fraction: f64,
    /// The concrete plan that was applied.
    pub plan: FaultPlan,
    /// Degraded / healthy throughput, when the remap succeeded.
    pub retention: Option<f64>,
    /// Degraded throughput, tokens/second, when the remap succeeded.
    pub tokens_per_s: Option<f64>,
    /// One-time recovery cost (remap + lost work), seconds; `None` when
    /// the remap failed and no recovery happened at all.
    pub recover_s: Option<f64>,
    /// Why the remap failed, when it did.
    pub error: Option<String>,
}

impl SweepPoint {
    /// Whether the platform kept running at this fault level.
    #[must_use]
    pub fn remapped(&self) -> bool {
        self.error.is_none()
    }
}

/// A full resilience sweep over fault fractions for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Platform name (from [`dabench_core::Platform::name`]).
    pub platform: String,
    /// Seed the plans were drawn from.
    pub seed: u64,
    /// One point per swept fault fraction, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl ResilienceReport {
    /// Fraction of sweep points whose remap succeeded (`0..=1`).
    #[must_use]
    pub fn remap_success_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.remapped()).count() as f64 / self.points.len() as f64
    }

    /// Worst throughput retention over the successful points.
    #[must_use]
    pub fn worst_retention(&self) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| p.retention)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.min(r))))
    }

    /// Mean time-to-recover over the successful faulted points, seconds;
    /// `None` when no faulted point recovered (distinct from an actual
    /// instant recovery of `Some(0.0)`, which a healthy remap can report).
    #[must_use]
    pub fn mean_time_to_recover_s(&self) -> Option<f64> {
        let faulted: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.remapped() && !p.plan.fault_set().is_empty())
            .filter_map(|p| p.recover_s)
            .collect();
        if faulted.is_empty() {
            None
        } else {
            Some(faulted.iter().sum::<f64>() / faulted.len() as f64)
        }
    }
}

/// Render a report as a fixed-width, byte-deterministic text table.
#[must_use]
pub fn render_report(report: &ResilienceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Resilience: {} (seed {})\n",
        report.platform, report.seed
    ));
    out.push_str(&format!(
        "{:>7}  {:>9}  {:>12}  {:>10}  {:<8}  faults\n",
        "dead%", "retention", "tokens/s", "recover_s", "status"
    ));
    for p in &report.points {
        let retention = p
            .retention
            .map_or_else(|| "-".to_owned(), |r| format!("{r:.3}"));
        let tokens = p
            .tokens_per_s
            .map_or_else(|| "-".to_owned(), |t| format!("{t:.1}"));
        let recover = p
            .recover_s
            .map_or_else(|| "-".to_owned(), |s| format!("{s:.2}"));
        let status = if p.remapped() { "ok" } else { "FAILED" };
        let labels: Vec<&str> = p.plan.faults.iter().map(|f| f.label.as_str()).collect();
        out.push_str(&format!(
            "{:>7.1}  {retention:>9}  {tokens:>12}  {recover:>10}  {status:<8}  {}\n",
            p.fraction * 100.0,
            if labels.is_empty() {
                "(none)".to_owned()
            } else {
                labels.join(" ")
            },
        ));
        if let Some(e) = &p.error {
            out.push_str(&format!("         ^ {e}\n"));
        }
    }
    out.push_str(&format!(
        "remap success rate: {}/{} ({:.0}%)",
        report.points.iter().filter(|p| p.remapped()).count(),
        report.points.len(),
        report.remap_success_rate() * 100.0
    ));
    if let Some(w) = report.worst_retention() {
        out.push_str(&format!("   worst retention: {w:.3}"));
    }
    out.push_str(&format!(
        "   mean time-to-recover: {}\n",
        report
            .mean_time_to_recover_s()
            .map_or_else(|| "-".to_owned(), |m| format!("{m:.1} s"))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, PlatformKind};
    use crate::spec::PlanSpec;

    fn point(fraction: f64, retention: Option<f64>, error: Option<String>) -> SweepPoint {
        SweepPoint {
            fraction,
            plan: FaultPlan::generate(
                PlatformKind::Wse,
                &PlanSpec::default().with_dead_fraction(fraction),
                1,
            ),
            retention,
            tokens_per_s: retention.map(|r| r * 1000.0),
            recover_s: if error.is_some() {
                None
            } else if fraction > 0.0 {
                Some(40.0)
            } else {
                Some(0.0)
            },
            error,
        }
    }

    fn report() -> ResilienceReport {
        ResilienceReport {
            platform: "cerebras-wse2".to_owned(),
            seed: 42,
            points: vec![
                point(0.0, Some(1.0), None),
                point(0.05, Some(0.93), None),
                point(0.5, None, Some("device fault".to_owned())),
            ],
        }
    }

    #[test]
    fn success_rate_counts_remaps() {
        let r = report();
        assert!((r.remap_success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.worst_retention(), Some(0.93));
    }

    #[test]
    fn mean_recover_skips_healthy_points() {
        // Only the 5% point is faulted AND remapped.
        assert!((report().mean_time_to_recover_s().unwrap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn mean_recover_is_none_when_nothing_recovered() {
        // Healthy point + failed remap: no faulted point recovered, which
        // must be distinguishable from instant recovery.
        let r = ResilienceReport {
            platform: "cerebras-wse2".to_owned(),
            seed: 42,
            points: vec![
                point(0.0, Some(1.0), None),
                point(0.5, None, Some("device fault".to_owned())),
            ],
        };
        assert_eq!(r.mean_time_to_recover_s(), None);
        assert!(
            render_report(&r).contains("mean time-to-recover: -"),
            "{}",
            render_report(&r)
        );
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let a = render_report(&report());
        let b = render_report(&report());
        assert_eq!(a, b);
        assert!(a.contains("cerebras-wse2"));
        assert!(a.contains("FAILED"));
        assert!(a.contains("device fault"));
        assert!(a.contains("remap success rate: 2/3"));
    }

    #[test]
    fn failed_points_render_no_recovery_time() {
        let rendered = render_report(&report());
        let failed_line = rendered
            .lines()
            .find(|l| l.contains("FAILED"))
            .expect("failed point rendered");
        // A failed remap has no recovery time — the column shows "-",
        // not a fabricated 0.00 seconds.
        assert!(failed_line.contains("  -  "), "{failed_line}");
        assert!(!failed_line.contains("0.00"), "{failed_line}");
    }

    #[test]
    fn mean_recover_ignores_failed_points() {
        let mut r = report();
        // A failed point must not drag the mean toward zero even if it
        // carries a (bogus) recover value through some other path.
        r.points[2].recover_s = None;
        assert!((r.mean_time_to_recover_s().unwrap() - 40.0).abs() < 1e-12);
    }
}
