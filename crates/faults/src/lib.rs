//! Seeded fault-injection planning and resilience benchmarking.
//!
//! This crate turns the descriptive fault types in [`dabench_core::faults`]
//! into concrete, reproducible experiments: a [`plan::FaultPlan`] is drawn
//! deterministically from a seed (same seed ⇒ byte-identical plan), applied
//! to any platform implementing [`dabench_core::Degradable`], and summarised
//! as a [`report::ResilienceReport`] (throughput retention vs. fault
//! fraction, remap success rate, time-to-recover).

pub mod plan;
pub mod report;
pub mod rng;
pub mod spec;
pub mod sweep;

pub use plan::{FaultPlan, PlannedFault, PlatformKind};
pub use report::{render_report, ResilienceReport, SweepPoint};
pub use rng::SplitMix64;
pub use spec::{PlanSpec, PlanSpecError};
pub use sweep::{resilience_sweep, FAULT_FRACTIONS};
