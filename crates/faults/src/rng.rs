//! Deterministic seeded randomness for fault-plan generation.
//!
//! The generator itself now lives in [`dabench_core::rng`] so the
//! supervision layer can fork deterministic retry streams with the same
//! discipline the fault planner uses; this module re-exports it to keep
//! `dabench_faults::rng::SplitMix64` (and the crate-root re-export)
//! stable for downstream users.

pub use dabench_core::rng::SplitMix64;
