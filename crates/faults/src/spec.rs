//! The `--plan` specification: how much of each fault class to inject.
//!
//! A [`PlanSpec`] is the *intensity* of an experiment (fractions and
//! counts); the seeded generator in [`crate::plan`] turns it into concrete
//! fault coordinates. The textual form is a comma-separated key=value
//! list, e.g. `dead=0.05,link=0.9,stalls=2,drop=1`.

use std::str::FromStr;

/// Fault intensities for one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSpec {
    /// Fraction of the compute fabric permanently dead (`0..=1`): WSE PE
    /// area, RDU PCUs/PMUs, IPU tiles.
    pub dead_fraction: f64,
    /// Surviving fraction of interconnect/DDR bandwidth (`0..=1`, `1.0`
    /// means healthy links).
    pub link_retained: f64,
    /// Number of transient task stalls to inject.
    pub transient_stalls: u32,
    /// Whole devices dropped (IPUs from the BSP pipeline; RDU tiles).
    pub dropped_devices: u32,
}

impl PlanSpec {
    /// Copy of the spec with a different dead-fabric fraction (used by
    /// sweeps).
    #[must_use]
    pub fn with_dead_fraction(mut self, fraction: f64) -> Self {
        self.dead_fraction = fraction;
        self
    }

    /// Whether the spec injects no faults at all.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.dead_fraction == 0.0
            && self.link_retained == 1.0
            && self.transient_stalls == 0
            && self.dropped_devices == 0
    }
}

impl Default for PlanSpec {
    /// The acceptance-test default: 5% dead fabric, everything else
    /// healthy.
    fn default() -> Self {
        Self {
            dead_fraction: 0.05,
            link_retained: 1.0,
            transient_stalls: 0,
            dropped_devices: 0,
        }
    }
}

fn parse_fraction(key: &str, value: &str) -> Result<f64, String> {
    let x: f64 = value
        .parse()
        .map_err(|e| format!("{key}: not a number ({e})"))?;
    if !(0.0..=1.0).contains(&x) {
        return Err(format!("{key}: {x} outside 0..=1"));
    }
    Ok(x)
}

impl FromStr for PlanSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = Self::default();
        for clause in s.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("`{clause}`: expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "dead" => spec.dead_fraction = parse_fraction(key, value)?,
                "link" => spec.link_retained = parse_fraction(key, value)?,
                "stalls" => {
                    spec.transient_stalls = value.parse().map_err(|e| format!("stalls: {e}"))?;
                }
                "drop" => {
                    spec.dropped_devices = value.parse().map_err(|e| format!("drop: {e}"))?;
                }
                other => {
                    return Err(format!(
                        "unknown plan key `{other}` (expected dead, link, stalls or drop)"
                    ))
                }
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_five_percent_dead() {
        let s = PlanSpec::default();
        assert!((s.dead_fraction - 0.05).abs() < 1e-12);
        assert_eq!(s.link_retained, 1.0);
        assert!(!s.is_healthy());
    }

    #[test]
    fn parses_full_clause_list() {
        let s: PlanSpec = "dead=0.1, link=0.8, stalls=3, drop=2".parse().unwrap();
        assert!((s.dead_fraction - 0.1).abs() < 1e-12);
        assert!((s.link_retained - 0.8).abs() < 1e-12);
        assert_eq!(s.transient_stalls, 3);
        assert_eq!(s.dropped_devices, 2);
    }

    #[test]
    fn empty_string_is_default() {
        assert_eq!("".parse::<PlanSpec>().unwrap(), PlanSpec::default());
    }

    #[test]
    fn rejects_bad_input() {
        assert!("dead=1.5".parse::<PlanSpec>().is_err());
        assert!("dead".parse::<PlanSpec>().is_err());
        assert!("banana=1".parse::<PlanSpec>().is_err());
        assert!("stalls=-1".parse::<PlanSpec>().is_err());
    }

    #[test]
    fn healthy_detection() {
        let s: PlanSpec = "dead=0".parse().unwrap();
        assert!(s.is_healthy());
        assert!(!"dead=0,stalls=1".parse::<PlanSpec>().unwrap().is_healthy());
    }
}
