//! The `--plan` specification: how much of each fault class to inject.
//!
//! A [`PlanSpec`] is the *intensity* of an experiment (fractions and
//! counts); the seeded generator in [`crate::plan`] turns it into concrete
//! fault coordinates. The textual form is a comma-separated key=value
//! list, e.g. `dead=0.05,link=0.9,stalls=2,drop=1`.
//!
//! Every construction path — the builder methods and the [`FromStr`]
//! parser — funnels through [`PlanSpec::validate`], so a spec holding a
//! NaN or out-of-range fraction cannot be smuggled into a sweep.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Why a [`PlanSpec`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanSpecError {
    /// A fractional field is NaN or infinite.
    NotFinite {
        /// Field name (`dead` or `link`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fractional field is outside `0..=1`.
    OutOfRange {
        /// Field name (`dead` or `link`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PlanSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanSpecError::NotFinite { field, value } => {
                write!(f, "{field}: {value} is not a finite number")
            }
            PlanSpecError::OutOfRange { field, value } => {
                write!(f, "{field}: {value} outside 0..=1")
            }
        }
    }
}

impl Error for PlanSpecError {}

/// Fault intensities for one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSpec {
    /// Fraction of the compute fabric permanently dead (`0..=1`): WSE PE
    /// area, RDU PCUs/PMUs, IPU tiles.
    pub dead_fraction: f64,
    /// Surviving fraction of interconnect/DDR bandwidth (`0..=1`, `1.0`
    /// means healthy links).
    pub link_retained: f64,
    /// Number of transient task stalls to inject.
    pub transient_stalls: u32,
    /// Whole devices dropped (IPUs from the BSP pipeline; RDU tiles).
    pub dropped_devices: u32,
}

impl PlanSpec {
    /// Check every invariant: fractional fields must be finite and in
    /// `0..=1` (counts are unsigned and always valid).
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured [`PlanSpecError`].
    pub fn validate(&self) -> Result<(), PlanSpecError> {
        for (field, value) in [("dead", self.dead_fraction), ("link", self.link_retained)] {
            if !value.is_finite() {
                return Err(PlanSpecError::NotFinite { field, value });
            }
            if !(0.0..=1.0).contains(&value) {
                return Err(PlanSpecError::OutOfRange { field, value });
            }
        }
        Ok(())
    }

    /// Copy of the spec with a different dead-fabric fraction, rejecting
    /// NaN and out-of-range values.
    ///
    /// # Errors
    ///
    /// [`PlanSpecError`] when `fraction` is not a finite value in `0..=1`.
    pub fn try_with_dead_fraction(mut self, fraction: f64) -> Result<Self, PlanSpecError> {
        self.dead_fraction = fraction;
        self.validate()?;
        Ok(self)
    }

    /// Copy of the spec with a different dead-fabric fraction (used by
    /// sweeps, whose fractions are trusted constants).
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is NaN or outside `0..=1` — an invalid
    /// fraction silently accepted here would skew a whole sweep; use
    /// [`PlanSpec::try_with_dead_fraction`] for untrusted input.
    #[must_use]
    pub fn with_dead_fraction(self, fraction: f64) -> Self {
        match self.try_with_dead_fraction(fraction) {
            Ok(spec) => spec,
            Err(e) => panic!("with_dead_fraction: {e}"),
        }
    }

    /// Build a spec from the generator's sampled [`FaultIntensity`]
    /// (`dabench_core::gen`) — core cannot depend on this crate, so the
    /// sampler carries plain intensities and this bridge re-validates
    /// them on the way into a concrete fault plan.
    ///
    /// # Errors
    ///
    /// [`PlanSpecError`] when the sampled fractions are out of range —
    /// impossible for tier-menu draws, but the bridge must not trust its
    /// input any more than the CLI parser does.
    pub fn from_intensity(
        intensity: &dabench_core::gen::FaultIntensity,
    ) -> Result<Self, PlanSpecError> {
        let spec = Self {
            dead_fraction: intensity.dead_fraction,
            link_retained: intensity.link_retained,
            transient_stalls: intensity.transient_stalls,
            dropped_devices: intensity.dropped_devices,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Whether the spec injects no faults at all.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.dead_fraction == 0.0
            && self.link_retained == 1.0
            && self.transient_stalls == 0
            && self.dropped_devices == 0
    }
}

impl Default for PlanSpec {
    /// The acceptance-test default: 5% dead fabric, everything else
    /// healthy.
    fn default() -> Self {
        Self {
            dead_fraction: 0.05,
            link_retained: 1.0,
            transient_stalls: 0,
            dropped_devices: 0,
        }
    }
}

impl FromStr for PlanSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = Self::default();
        for clause in s.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("`{clause}`: expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let number = |key: &str| -> Result<f64, String> {
                value
                    .parse()
                    .map_err(|e| format!("{key}: not a number ({e})"))
            };
            match key {
                "dead" => spec.dead_fraction = number(key)?,
                "link" => spec.link_retained = number(key)?,
                "stalls" => {
                    spec.transient_stalls = value.parse().map_err(|e| format!("stalls: {e}"))?;
                }
                "drop" => {
                    spec.dropped_devices = value.parse().map_err(|e| format!("drop: {e}"))?;
                }
                other => {
                    return Err(format!(
                        "unknown plan key `{other}` (expected dead, link, stalls or drop)"
                    ))
                }
            }
        }
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_five_percent_dead() {
        let s = PlanSpec::default();
        assert!((s.dead_fraction - 0.05).abs() < 1e-12);
        assert_eq!(s.link_retained, 1.0);
        assert!(!s.is_healthy());
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn parses_full_clause_list() {
        let s: PlanSpec = "dead=0.1, link=0.8, stalls=3, drop=2".parse().unwrap();
        assert!((s.dead_fraction - 0.1).abs() < 1e-12);
        assert!((s.link_retained - 0.8).abs() < 1e-12);
        assert_eq!(s.transient_stalls, 3);
        assert_eq!(s.dropped_devices, 2);
    }

    #[test]
    fn empty_string_is_default() {
        assert_eq!("".parse::<PlanSpec>().unwrap(), PlanSpec::default());
    }

    #[test]
    fn rejects_bad_input() {
        assert!("dead=1.5".parse::<PlanSpec>().is_err());
        assert!("dead".parse::<PlanSpec>().is_err());
        assert!("banana=1".parse::<PlanSpec>().is_err());
        assert!("stalls=-1".parse::<PlanSpec>().is_err());
    }

    #[test]
    fn parser_rejects_nan_and_infinity() {
        // "NaN" and "inf" parse as f64, so the range check alone is not
        // enough — validate() must catch them with a structured error.
        for bad in ["dead=NaN", "dead=inf", "link=-inf", "link=NaN"] {
            let err = bad.parse::<PlanSpec>().unwrap_err();
            assert!(
                err.contains("not a finite number") || err.contains("outside"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn builder_and_parser_share_validation() {
        let nan = PlanSpec::default().try_with_dead_fraction(f64::NAN);
        assert!(matches!(
            nan,
            Err(PlanSpecError::NotFinite { field: "dead", .. })
        ));
        let out = PlanSpec::default().try_with_dead_fraction(1.5);
        assert_eq!(
            out,
            Err(PlanSpecError::OutOfRange {
                field: "dead",
                value: 1.5
            })
        );
        assert!(PlanSpec::default().try_with_dead_fraction(0.2).is_ok());
    }

    #[test]
    #[should_panic(expected = "with_dead_fraction")]
    fn panicking_builder_rejects_nan() {
        let _ = PlanSpec::default().with_dead_fraction(f64::NAN);
    }

    #[test]
    fn validate_reports_link_field_too() {
        let s = PlanSpec {
            link_retained: f64::INFINITY,
            ..PlanSpec::default()
        };
        assert!(matches!(
            s.validate(),
            Err(PlanSpecError::NotFinite { field: "link", .. })
        ));
        let s = PlanSpec {
            link_retained: -0.1,
            ..PlanSpec::default()
        };
        assert!(matches!(
            s.validate(),
            Err(PlanSpecError::OutOfRange { field: "link", .. })
        ));
    }

    #[test]
    fn intensity_bridge_round_trips_and_validates() {
        let healthy = dabench_core::gen::FaultIntensity::healthy();
        let spec = PlanSpec::from_intensity(&healthy).unwrap();
        assert!(spec.is_healthy());

        let hot = dabench_core::gen::FaultIntensity {
            dead_fraction: 0.2,
            link_retained: 0.6,
            transient_stalls: 4,
            dropped_devices: 2,
        };
        let spec = PlanSpec::from_intensity(&hot).unwrap();
        assert!((spec.dead_fraction - 0.2).abs() < 1e-12);
        assert!((spec.link_retained - 0.6).abs() < 1e-12);
        assert_eq!(spec.transient_stalls, 4);
        assert_eq!(spec.dropped_devices, 2);

        let bad = dabench_core::gen::FaultIntensity {
            dead_fraction: 1.5,
            ..healthy
        };
        assert!(PlanSpec::from_intensity(&bad).is_err());
    }

    #[test]
    fn healthy_detection() {
        let s: PlanSpec = "dead=0".parse().unwrap();
        assert!(s.is_healthy());
        assert!(!"dead=0,stalls=1".parse::<PlanSpec>().unwrap().is_healthy());
    }
}
