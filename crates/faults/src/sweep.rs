//! Resilience sweeps: degrade a platform across growing fault fractions.

use crate::plan::{FaultPlan, PlatformKind};
use crate::report::{ResilienceReport, SweepPoint};
use crate::rng::SplitMix64;
use crate::spec::PlanSpec;
use dabench_core::{par_map, Degradable};
use dabench_model::TrainingWorkload;

/// Dead-fabric fractions every sweep visits, in order.
pub const FAULT_FRACTIONS: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];

/// Sweep `platform` over [`FAULT_FRACTIONS`], drawing each point's plan
/// from a seed forked off `seed` (same seed ⇒ byte-identical report).
///
/// The `base` spec's link/stall/drop intensities apply at every point;
/// only the dead-fabric fraction varies. A point whose remap fails is
/// recorded with its error rather than aborting the sweep — a platform
/// that cannot survive 20% dead fabric is a finding, not a crash.
///
/// Points are independent — each forks its own RNG stream off `seed` by
/// sweep index — so they are evaluated in parallel (respecting
/// [`dabench_core::jobs`]) and collected back in sweep order; the report
/// is byte-identical regardless of worker count.
#[must_use]
pub fn resilience_sweep(
    platform: &(dyn Degradable + Sync),
    workload: &TrainingWorkload,
    base: &PlanSpec,
    seed: u64,
) -> ResilienceReport {
    // The platform reports its own fault geometry; no name sniffing, no
    // silent fallback to a wrong plan family.
    let kind = PlatformKind::from_fault_kind(platform.fault_kind());
    let indexed: Vec<(usize, f64)> = FAULT_FRACTIONS.iter().copied().enumerate().collect();
    let points = par_map(&indexed, |&(i, fraction)| {
        let spec = base.with_dead_fraction(fraction);
        let mut fork = SplitMix64::fork(seed, i as u64);
        let plan = FaultPlan::generate(kind, &spec, fork.next_u64());
        match platform.degrade(workload, &plan.fault_set()) {
            Ok(d) => SweepPoint {
                fraction,
                retention: Some(d.throughput_retention()),
                tokens_per_s: Some(d.degraded.throughput_tokens_per_s),
                recover_s: Some(d.recovery_cost.total_s()),
                error: None,
                plan,
            },
            Err(e) => SweepPoint {
                fraction,
                retention: None,
                tokens_per_s: None,
                recover_s: None,
                error: Some(e.to_string()),
                plan,
            },
        }
    });
    ResilienceReport {
        platform: platform.name().to_owned(),
        seed,
        points,
    }
}
