//! Resilience sweeps: degrade a platform across growing fault fractions.

use crate::plan::{FaultPlan, PlatformKind};
use crate::report::{ResilienceReport, SweepPoint};
use crate::rng::SplitMix64;
use crate::spec::PlanSpec;
use dabench_core::{catch_labeled, par_map, Degradable};
use dabench_model::TrainingWorkload;

/// Dead-fabric fractions every sweep visits, in order.
pub const FAULT_FRACTIONS: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];

/// Sweep `platform` over [`FAULT_FRACTIONS`], drawing each point's plan
/// from a seed forked off `seed` (same seed ⇒ byte-identical report).
///
/// The `base` spec's link/stall/drop intensities apply at every point;
/// only the dead-fabric fraction varies. A point whose remap fails is
/// recorded with its error rather than aborting the sweep — a platform
/// that cannot survive 20% dead fabric is a finding, not a crash. The
/// same holds for a remap that *panics*: the panic is caught per point
/// (labelled with the platform and fraction) and recorded as that
/// point's error, so one buggy fault path cannot take down the sweep.
///
/// Points are independent — each forks its own RNG stream off `seed` by
/// sweep index — so they are evaluated in parallel (respecting
/// [`dabench_core::jobs`]) and collected back in sweep order; the report
/// is byte-identical regardless of worker count.
#[must_use]
pub fn resilience_sweep(
    platform: &(dyn Degradable + Sync),
    workload: &TrainingWorkload,
    base: &PlanSpec,
    seed: u64,
) -> ResilienceReport {
    // The platform reports its own fault geometry; no name sniffing, no
    // silent fallback to a wrong plan family.
    let kind = PlatformKind::from_fault_kind(platform.fault_kind());
    let indexed: Vec<(usize, f64)> = FAULT_FRACTIONS.iter().copied().enumerate().collect();
    let points = par_map(&indexed, |&(i, fraction)| {
        let spec = base.with_dead_fraction(fraction);
        let mut fork = SplitMix64::fork(seed, i as u64);
        let plan = FaultPlan::generate(kind, &spec, fork.next_u64());
        let label = format!("{} dead={fraction}", platform.name());
        let outcome = catch_labeled(&label, || platform.degrade(workload, &plan.fault_set()));
        match outcome {
            Ok(Ok(d)) => SweepPoint {
                fraction,
                retention: Some(d.throughput_retention()),
                tokens_per_s: Some(d.degraded.throughput_tokens_per_s),
                recover_s: Some(d.recovery_cost.total_s()),
                error: None,
                plan,
            },
            Ok(Err(e)) => SweepPoint {
                fraction,
                retention: None,
                tokens_per_s: None,
                recover_s: None,
                error: Some(e.to_string()),
                plan,
            },
            Err(panicked) => SweepPoint {
                fraction,
                retention: None,
                tokens_per_s: None,
                recover_s: None,
                error: Some(panicked),
                plan,
            },
        }
    });
    ResilienceReport {
        platform: platform.name().to_owned(),
        seed,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::{
        ChipProfile, ComputeUnitSpec, DegradedProfile, FaultKind, FaultSet, HardwareSpec, Platform,
        PlatformError, RecoveryCost, TaskProfile,
    };
    use dabench_model::{ModelConfig, Precision};

    /// A platform whose fault path panics at high dead fractions — the
    /// kind of bug the sweep must survive, not crash on.
    struct PanickyChip;

    impl Platform for PanickyChip {
        fn name(&self) -> &str {
            "panicky-chip"
        }

        fn spec(&self) -> HardwareSpec {
            HardwareSpec {
                name: "panicky-chip".into(),
                compute_units: vec![ComputeUnitSpec {
                    kind: "pe".into(),
                    count: 10,
                }],
                peak_tflops: 100.0,
                memory_levels: vec![],
            }
        }

        fn profile(&self, _w: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
            Ok(healthy_profile())
        }
    }

    fn healthy_profile() -> ChipProfile {
        ChipProfile {
            unit_usage: vec![("pe".into(), 8, 10)],
            tasks: vec![TaskProfile::new("k", 1.0, 8.0)],
            sections: vec![],
            memory: vec![],
            achieved_tflops: 40.0,
            throughput_tokens_per_s: 1.0e4,
            step_time_s: 0.5,
        }
    }

    impl Degradable for PanickyChip {
        fn fault_kind(&self) -> FaultKind {
            FaultKind::TiledFabric
        }

        fn degrade(
            &self,
            _workload: &TrainingWorkload,
            faults: &FaultSet,
        ) -> Result<DegradedProfile, PlatformError> {
            assert!(
                faults.dead_unit_fraction("pcu") < 0.1,
                "unhandled fault geometry"
            );
            Ok(DegradedProfile {
                healthy: healthy_profile(),
                degraded: healthy_profile(),
                recovery_cost: RecoveryCost::default(),
            })
        }
    }

    #[test]
    fn panicking_point_is_recorded_not_propagated() {
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 4, 512, Precision::Fp16);
        let report = resilience_sweep(&PanickyChip, &w, &PlanSpec::default(), 42);
        assert_eq!(report.points.len(), FAULT_FRACTIONS.len());
        let panicked: Vec<_> = report
            .points
            .iter()
            .filter(|p| p.error.as_deref().is_some_and(|e| e.contains("panicked")))
            .collect();
        assert!(!panicked.is_empty(), "high fractions should have panicked");
        for p in &panicked {
            let e = p.error.as_deref().unwrap();
            assert!(e.contains("panicky-chip"), "label names the platform: {e}");
            assert!(e.contains("unhandled fault geometry"), "{e}");
        }
        // Low fractions still succeeded — the sweep kept going.
        assert!(report.points.iter().any(|p| p.remapped()));
    }
}
