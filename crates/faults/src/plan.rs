//! Seeded generation of concrete fault plans.
//!
//! A [`FaultPlan`] assigns coordinates to the intensities of a
//! [`PlanSpec`] using a [`SplitMix64`] stream, so the same `(platform,
//! spec, seed)` triple always yields byte-identical faults. Each platform
//! family receives the fault shapes its architecture actually exhibits:
//! dead PE rectangles on the WSE wafer, failed PCU/PMU populations and
//! tiles on the RDU, dropped devices in the IPU's BSP pipeline.

use crate::rng::SplitMix64;
use crate::spec::PlanSpec;
use dabench_core::{DeadRect, Fault, FaultKind, FaultSet};

/// The architectural family a plan targets; decides which fault shapes
/// the generator draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// Wafer-scale PE grid (Cerebras WSE): dead rectangles.
    Wse,
    /// Tiled PCU/PMU fabric (SambaNova RDU): failed unit populations and
    /// whole tiles.
    Rdu,
    /// Multi-device BSP pipeline (Graphcore IPU): dead tiles and dropped
    /// devices.
    Ipu,
}

impl PlatformKind {
    /// The plan family for a platform-reported fault geometry — the
    /// authoritative mapping, used by sweeps instead of name inference.
    #[must_use]
    pub fn from_fault_kind(kind: FaultKind) -> Self {
        match kind {
            FaultKind::WaferGrid => Self::Wse,
            FaultKind::TiledFabric => Self::Rdu,
            FaultKind::BspPipeline => Self::Ipu,
        }
    }

    /// Infer the family from a [`dabench_core::Platform::name`] string.
    ///
    /// Heuristic only — prefer [`PlatformKind::from_fault_kind`] with
    /// [`dabench_core::Degradable::fault_kind`] when a platform instance
    /// is at hand; a renamed platform silently defeats this matcher.
    #[must_use]
    pub fn infer(platform_name: &str) -> Option<Self> {
        let n = platform_name.to_ascii_lowercase();
        if n.contains("wse") || n.contains("cerebras") {
            Some(Self::Wse)
        } else if n.contains("rdu") || n.contains("sn30") || n.contains("sambanova") {
            Some(Self::Rdu)
        } else if n.contains("ipu") || n.contains("bow") || n.contains("graphcore") {
            Some(Self::Ipu)
        } else {
            None
        }
    }
}

/// One generated fault plus a human-readable label for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFault {
    /// Short description, e.g. `"dead-band0"`.
    pub label: String,
    /// The fault itself.
    pub fault: Fault,
}

/// A concrete, reproducible set of faults for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was drawn from.
    pub seed: u64,
    /// Platform family the shapes were drawn for.
    pub kind: PlatformKind,
    /// Intensities the plan realizes.
    pub spec: PlanSpec,
    /// The generated faults.
    pub faults: Vec<PlannedFault>,
}

/// IPUs per Bow-2000 chassis / tiles per SN30 — the device quantum whole-
/// device faults are drawn against (both machines carry four).
const DEVICES_PER_MACHINE: u64 = 4;

impl FaultPlan {
    /// Draw a plan for `kind` realizing `spec`, deterministically from
    /// `seed`.
    #[must_use]
    pub fn generate(kind: PlatformKind, spec: &PlanSpec, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::new();

        if spec.dead_fraction > 0.0 {
            match kind {
                PlatformKind::Wse => dead_bands(&mut rng, spec.dead_fraction, &mut faults),
                PlatformKind::Rdu => {
                    // Both unit populations fail; PMUs somewhat less often
                    // (they carry no arithmetic state to corrupt).
                    let pmu_share = rng.uniform(0.6, 1.0);
                    push_units(&mut faults, "pcu", spec.dead_fraction);
                    push_units(&mut faults, "pmu", spec.dead_fraction * pmu_share);
                }
                PlatformKind::Ipu => push_units(&mut faults, "tile", spec.dead_fraction),
            }
        }

        if spec.dropped_devices > 0 {
            match kind {
                PlatformKind::Ipu => {
                    // Distinct device indices within the chassis.
                    let count = u64::from(spec.dropped_devices).min(DEVICES_PER_MACHINE);
                    let mut pool: Vec<u64> = (0..DEVICES_PER_MACHINE).collect();
                    for i in 0..count {
                        let pick = i as usize + rng.below(pool.len() as u64 - i) as usize;
                        pool.swap(i as usize, pick);
                        faults.push(PlannedFault {
                            label: format!("dropped-ipu{}", pool[i as usize]),
                            fault: Fault::DroppedDevice {
                                index: pool[i as usize] as u32,
                            },
                        });
                    }
                }
                PlatformKind::Rdu => {
                    // A lost RDU tile takes a quarter of the fabric with it.
                    let count = u64::from(spec.dropped_devices).min(DEVICES_PER_MACHINE);
                    faults.push(PlannedFault {
                        label: format!("failed-tiles({count})"),
                        fault: Fault::DeadUnits {
                            kind: "tile".to_owned(),
                            fraction: count as f64 / DEVICES_PER_MACHINE as f64,
                        },
                    });
                }
                // The wafer is one device; dropping it is total loss.
                PlatformKind::Wse => faults.push(PlannedFault {
                    label: "dead-wafer".to_owned(),
                    fault: Fault::DeadRect(DeadRect {
                        col: 0.0,
                        row: 0.0,
                        width: 1.0,
                        height: 1.0,
                    }),
                }),
            }
        }

        if spec.link_retained < 1.0 {
            faults.push(PlannedFault {
                label: format!("link({:.2})", spec.link_retained),
                fault: Fault::LinkDegraded {
                    retained_fraction: spec.link_retained,
                },
            });
        }

        for i in 0..spec.transient_stalls {
            let task_index = rng.below(12) as u32;
            let stall_s = rng.uniform(0.05, 1.5);
            faults.push(PlannedFault {
                label: format!("stall{i}@t{task_index}"),
                fault: Fault::TransientStall {
                    task_index,
                    stall_s,
                },
            });
        }

        Self {
            seed,
            kind,
            spec: *spec,
            faults,
        }
    }

    /// The plan as a platform-consumable fault set.
    #[must_use]
    pub fn fault_set(&self) -> FaultSet {
        FaultSet::new(self.faults.iter().map(|p| p.fault.clone()).collect())
    }
}

fn push_units(faults: &mut Vec<PlannedFault>, kind: &str, fraction: f64) {
    faults.push(PlannedFault {
        label: format!("dead-{kind}({fraction:.3})"),
        fault: Fault::DeadUnits {
            kind: kind.to_owned(),
            fraction,
        },
    });
}

/// Draw 1–3 disjoint full-height dead bands whose widths sum exactly to
/// `fraction`, so the dead area equals the dead column fraction (strips
/// are full-height on the WSE, making a partial-height dead PE poison its
/// whole column anyway).
fn dead_bands(rng: &mut SplitMix64, fraction: f64, faults: &mut Vec<PlannedFault>) {
    let k = (1 + rng.below(3)) as usize;
    let raw: Vec<f64> = (0..k).map(|_| rng.uniform(0.5, 1.5)).collect();
    let total: f64 = raw.iter().sum();
    // Each band lives in its own 1/k slot of the wafer width, so bands
    // can never overlap and the area sum stays exact.
    let slot = 1.0 / k as f64;
    for (i, r) in raw.iter().enumerate() {
        let width = (fraction * r / total).min(slot);
        let offset = rng.next_f64() * (slot - width);
        faults.push(PlannedFault {
            label: format!("dead-band{i}"),
            fault: Fault::DeadRect(DeadRect {
                col: i as f64 * slot + offset,
                row: 0.0,
                width,
                height: 1.0,
            }),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_identical_plan() {
        let spec = PlanSpec {
            dead_fraction: 0.1,
            link_retained: 0.7,
            transient_stalls: 3,
            dropped_devices: 1,
        };
        for kind in [PlatformKind::Wse, PlatformKind::Rdu, PlatformKind::Ipu] {
            let a = FaultPlan::generate(kind, &spec, 42);
            let b = FaultPlan::generate(kind, &spec, 42);
            assert_eq!(a, b);
            assert_ne!(a, FaultPlan::generate(kind, &spec, 43));
        }
    }

    #[test]
    fn wse_dead_area_matches_spec_fraction() {
        for seed in 0..20 {
            let spec = PlanSpec::default().with_dead_fraction(0.05);
            let plan = FaultPlan::generate(PlatformKind::Wse, &spec, seed);
            let area = plan.fault_set().dead_pe_fraction();
            assert!((area - 0.05).abs() < 1e-9, "seed {seed}: {area}");
        }
    }

    #[test]
    fn wse_bands_are_disjoint_and_full_height() {
        let spec = PlanSpec::default().with_dead_fraction(0.2);
        let plan = FaultPlan::generate(PlatformKind::Wse, &spec, 7);
        let set = plan.fault_set();
        let rects: Vec<&DeadRect> = set.dead_rects().collect();
        for r in &rects {
            assert_eq!(r.height, 1.0);
        }
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(
                    a.col + a.width <= b.col || b.col + b.width <= a.col,
                    "{a:?} overlaps {b:?}"
                );
            }
        }
    }

    #[test]
    fn ipu_drops_distinct_devices() {
        let spec = PlanSpec {
            dead_fraction: 0.0,
            link_retained: 1.0,
            transient_stalls: 0,
            dropped_devices: 3,
        };
        let plan = FaultPlan::generate(PlatformKind::Ipu, &spec, 9);
        let dropped = plan.fault_set().dropped_devices();
        assert_eq!(dropped.len(), 3);
        assert!(dropped.iter().all(|&i| i < 4));
    }

    #[test]
    fn healthy_spec_yields_empty_plan() {
        let spec: PlanSpec = "dead=0".parse().unwrap();
        for kind in [PlatformKind::Wse, PlatformKind::Rdu, PlatformKind::Ipu] {
            assert!(FaultPlan::generate(kind, &spec, 1).fault_set().is_empty());
        }
    }

    #[test]
    fn kind_inference_covers_platform_names() {
        assert_eq!(
            PlatformKind::infer("cerebras-wse2"),
            Some(PlatformKind::Wse)
        );
        assert_eq!(
            PlatformKind::infer("sambanova-sn30-o3"),
            Some(PlatformKind::Rdu)
        );
        assert_eq!(
            PlatformKind::infer("graphcore-bow-ipu"),
            Some(PlatformKind::Ipu)
        );
        assert_eq!(PlatformKind::infer("gpu-reference"), None);
    }
}
