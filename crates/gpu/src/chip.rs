//! GPU hardware description.

use serde::{Deserialize, Serialize};

/// Static description of one data-center GPU and its cluster links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak 16-bit tensor-core throughput, TFLOP/s.
    pub peak_tflops: f64,
    /// HBM capacity, bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth, bytes/second.
    pub hbm_bw_bytes_per_s: f64,
    /// Intra-node (NVLink) bandwidth per GPU, bytes/second.
    pub nvlink_bw_bytes_per_s: f64,
    /// Effective inter-node allreduce goodput per GPU, bytes/second.
    pub ib_bw_bytes_per_s: f64,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Model-FLOPs utilization on dense transformer kernels.
    pub mfu: f64,
    /// Per-stage-boundary inefficiency of pipeline parallelism (layer
    /// imbalance + exposed p2p transfers), as a fractional step inflation
    /// per extra stage.
    pub pp_stage_inefficiency: f64,
}

impl GpuSpec {
    /// An A100-80GB SXM configuration.
    #[must_use]
    pub fn a100() -> Self {
        Self {
            peak_tflops: 312.0,
            hbm_bytes: 80 << 30,
            hbm_bw_bytes_per_s: 2.0e12,
            nvlink_bw_bytes_per_s: 300e9,
            ib_bw_bytes_per_s: 20e9,
            gpus_per_node: 8,
            mfu: 0.45,
            pp_stage_inefficiency: 0.09,
        }
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_numbers() {
        let g = GpuSpec::a100();
        assert_eq!(g.peak_tflops, 312.0);
        assert!(g.nvlink_bw_bytes_per_s > g.ib_bw_bytes_per_s);
        assert!(g.mfu < 1.0);
    }
}
