//! [`Platform`] and [`Scalable`] implementations for the GPU baseline.

use crate::parallelism::{megatron_throughput, MegatronConfig};
use crate::GpuCluster;
use dabench_core::{
    ChipProfile, ComputeUnitSpec, HardwareSpec, Memoizable, MemoryLevelSpec, MemoryLevelUsage,
    MemoryScope, ParallelStrategy, Platform, PlatformError, Scalable, ScalingProfile,
};
use dabench_model::TrainingWorkload;

impl Platform for GpuCluster {
    fn name(&self) -> &str {
        "gpu-reference"
    }

    fn spec(&self) -> HardwareSpec {
        let g = self.gpu_spec();
        HardwareSpec {
            name: "GPU (reference)".to_owned(),
            compute_units: vec![ComputeUnitSpec {
                kind: "sm".to_owned(),
                count: 108,
            }],
            peak_tflops: g.peak_tflops,
            memory_levels: vec![MemoryLevelSpec {
                name: "hbm".to_owned(),
                scope: MemoryScope::OffChip,
                capacity_bytes: g.hbm_bytes,
                bandwidth_bytes_per_s: Some(g.hbm_bw_bytes_per_s),
            }],
        }
    }

    fn profile(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
        use dabench_core::obs;
        obs::span(obs::Phase::Execute, "gpu.profile", || {
            let p = self.profile_inner(workload);
            if let Ok(p) = &p {
                obs::counter("gpu.step_time_s", p.step_time_s);
                obs::counter("gpu.achieved_tflops", p.achieved_tflops);
            }
            p
        })
    }
}

impl GpuCluster {
    fn profile_inner(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
        let g = self.gpu_spec();
        let state = workload.training_state_bytes() + workload.activation_memory().stored_bytes();
        if state > g.hbm_bytes {
            return Err(PlatformError::OutOfMemory {
                level: "hbm".to_owned(),
                required_bytes: state,
                capacity_bytes: g.hbm_bytes,
            });
        }
        let run = megatron_throughput(g, workload, MegatronConfig::new(1, 1, 1))?;
        Ok(ChipProfile {
            unit_usage: vec![("sm".to_owned(), 108, 108)],
            tasks: vec![],
            sections: vec![],
            memory: vec![MemoryLevelUsage {
                name: "hbm".to_owned(),
                used_bytes: state,
                capacity_bytes: g.hbm_bytes,
            }],
            achieved_tflops: dabench_core::compile::training_graph(workload)
                .summary()
                .total_flops
                / run.step_time_s
                / 1e12,
            throughput_tokens_per_s: run.tokens_per_s,
            step_time_s: run.step_time_s,
        })
    }
}

impl Memoizable for GpuCluster {
    fn cache_token(&self) -> String {
        crate::cache_token_of(self.gpu_spec())
    }

    fn cache_key(&self) -> dabench_core::CacheKey {
        self.cache_key
    }
}

impl Scalable for GpuCluster {
    fn scale(
        &self,
        workload: &TrainingWorkload,
        strategy: ParallelStrategy,
    ) -> Result<ScalingProfile, PlatformError> {
        let config = match strategy {
            ParallelStrategy::TensorParallel { degree } => MegatronConfig::new(degree, 1, 1),
            ParallelStrategy::PipelineParallel { devices } => MegatronConfig::new(1, devices, 1),
            ParallelStrategy::DataParallel { replicas } => MegatronConfig::new(1, 1, replicas),
            ParallelStrategy::WeightStreaming => {
                return Err(PlatformError::Unsupported(
                    "weight streaming is a Cerebras mode".to_owned(),
                ))
            }
        };
        let run = megatron_throughput(self.gpu_spec(), workload, config)?;
        Ok(ScalingProfile {
            strategy,
            throughput_tokens_per_s: run.tokens_per_s,
            communication_fraction: run.comm_fraction,
            per_unit_allocation: vec![("sm".to_owned(), 1.0)],
            detail: vec![("tokens_per_s_per_gpu".to_owned(), run.tokens_per_s_per_gpu)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::tier1;
    use dabench_model::{ModelConfig, Precision};

    #[test]
    fn single_gpu_profile_works() {
        let cluster = GpuCluster::default();
        let w = TrainingWorkload::new(ModelConfig::gpt2_small(), 8, 1024, Precision::Fp16);
        let r = tier1::run(&cluster, &w).unwrap();
        assert!(r.achieved_tflops > 50.0);
        assert!(r.compute_efficiency < 0.6);
    }

    #[test]
    fn hbm_capacity_enforced() {
        let cluster = GpuCluster::default();
        let huge = TrainingWorkload::new(ModelConfig::llama2_70b(), 8, 4096, Precision::Fp16);
        assert!(matches!(
            cluster.profile(&huge),
            Err(PlatformError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn scale_maps_strategies() {
        let cluster = GpuCluster::default();
        let w = TrainingWorkload::new(ModelConfig::gpt2_xl(), 64, 1024, Precision::Fp16);
        assert!(cluster
            .scale(&w, ParallelStrategy::TensorParallel { degree: 8 })
            .is_ok());
        assert!(cluster
            .scale(&w, ParallelStrategy::PipelineParallel { devices: 8 })
            .is_ok());
        assert!(matches!(
            cluster.scale(&w, ParallelStrategy::WeightStreaming),
            Err(PlatformError::Unsupported(_))
        ));
    }
}
