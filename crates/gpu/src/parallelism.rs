//! Megatron-LM-style 3D parallelism cost model.

use crate::chip::GpuSpec;
use dabench_core::PlatformError;
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};

/// A 3D parallel layout: tensor × pipeline × data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MegatronConfig {
    /// Tensor-parallel degree (kept within one node in practice).
    pub tp: u32,
    /// Pipeline-parallel stages.
    pub pp: u32,
    /// Data-parallel replicas.
    pub dp: u32,
    /// Micro-batch size in sequences.
    pub micro_batch: u32,
}

impl MegatronConfig {
    /// Layout with the default micro-batch of one sequence.
    #[must_use]
    pub fn new(tp: u32, pp: u32, dp: u32) -> Self {
        Self {
            tp,
            pp,
            dp,
            micro_batch: 1,
        }
    }

    /// Total GPUs of the layout.
    #[must_use]
    pub fn gpus(&self) -> u32 {
        self.tp * self.pp * self.dp
    }

    /// Table-III-style label, e.g. `"T8P1D1"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("T{}P{}D{}", self.tp, self.pp, self.dp)
    }
}

/// Outcome of one Megatron-style training-step estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuRun {
    /// Layout evaluated.
    pub config: MegatronConfig,
    /// Wall-clock step time, seconds.
    pub step_time_s: f64,
    /// Aggregate throughput, tokens/second.
    pub tokens_per_s: f64,
    /// Per-GPU normalized throughput, tokens/second/GPU (the unit used for
    /// the paper's reference rows).
    pub tokens_per_s_per_gpu: f64,
    /// Pipeline-bubble share of the step.
    pub bubble_fraction: f64,
    /// Communication share of the step (TP + DP allreduces).
    pub comm_fraction: f64,
}

/// Estimate one training step of `workload` under `config`.
///
/// The global batch is split over data-parallel replicas and streamed
/// through the pipeline in micro-batches; tensor-parallel allreduces ride
/// NVLink inside a node, gradient allreduces ride the cluster fabric with
/// partial backward overlap.
///
/// # Errors
///
/// [`PlatformError::Unsupported`] when the layout is invalid for the
/// workload (zero degrees, TP beyond a node, batch not divisible by the
/// data-parallel degree).
pub fn megatron_throughput(
    spec: &GpuSpec,
    workload: &TrainingWorkload,
    config: MegatronConfig,
) -> Result<GpuRun, PlatformError> {
    use dabench_core::obs;
    obs::span(obs::Phase::Execute, "gpu.megatron", || {
        let run = megatron_inner(spec, workload, config);
        if let Ok(run) = &run {
            obs::counter("gpu.tokens_per_s", run.tokens_per_s);
            obs::counter("gpu.bubble_fraction", run.bubble_fraction);
        }
        run
    })
}

fn megatron_inner(
    spec: &GpuSpec,
    workload: &TrainingWorkload,
    config: MegatronConfig,
) -> Result<GpuRun, PlatformError> {
    if config.tp == 0 || config.pp == 0 || config.dp == 0 || config.micro_batch == 0 {
        return Err(PlatformError::Unsupported(
            "parallel degrees must be positive".to_owned(),
        ));
    }
    if config.tp > spec.gpus_per_node {
        return Err(PlatformError::Unsupported(format!(
            "tensor parallelism beyond one node ({} > {})",
            config.tp, spec.gpus_per_node
        )));
    }
    if !workload.batch_size().is_multiple_of(u64::from(config.dp)) {
        return Err(PlatformError::Unsupported(format!(
            "global batch {} not divisible by dp={}",
            workload.batch_size(),
            config.dp
        )));
    }

    let model = workload.model();
    let eb = workload.precision().bytes_per_element() as f64;
    let local_batch = workload.batch_size() / u64::from(config.dp);
    let micro = u64::from(config.micro_batch).min(local_batch);
    let num_micro = local_batch.div_ceil(micro).max(1);

    // Compute: the replica's share of the step FLOPs, spread over tp×pp.
    let step_flops = dabench_core::compile::training_graph(workload)
        .summary()
        .total_flops;
    let replica_flops = step_flops / f64::from(config.dp);
    let per_gpu_rate = spec.peak_tflops * 1e12 * spec.mfu;
    let compute_time = replica_flops / (f64::from(config.tp * config.pp) * per_gpu_rate);

    // Tensor parallelism: 4 allreduces per layer per micro-batch pass
    // (2 fwd + 2 bwd) among the TP ranks of one pipeline stage (L/p layers
    // per stage), each on micro×S×h activations.
    let tp_time = if config.tp > 1 {
        let volume = 4.0
            * (model.num_layers as f64 / f64::from(config.pp))
            * (local_batch * workload.seq_len() * model.hidden_size) as f64
            * eb
            * (f64::from(config.tp) - 1.0)
            / f64::from(config.tp);
        volume / spec.nvlink_bw_bytes_per_s
    } else {
        0.0
    };

    // Pipeline bubble — the classic (p-1)/(m+p-1) inflation — plus the
    // per-stage inefficiency of imperfect layer balance and exposed p2p
    // activation transfers.
    let p = f64::from(config.pp);
    let m = num_micro as f64;
    let bubble_inflation = (m + p - 1.0) / m * (1.0 + spec.pp_stage_inefficiency * (p - 1.0));

    // Data parallelism: gradient allreduce on the replica's parameter
    // shard, half-overlapped with backward.
    let dp_time = if config.dp > 1 {
        let shard = model.parameter_count() as f64 * eb / f64::from(config.tp * config.pp);
        let d = f64::from(config.dp);
        let cross_node = config.gpus() > spec.gpus_per_node;
        let bw = if cross_node {
            spec.ib_bw_bytes_per_s
        } else {
            spec.nvlink_bw_bytes_per_s
        };
        0.5 * 2.0 * shard * (d - 1.0) / d / bw
    } else {
        0.0
    };

    let pipeline_time = (compute_time + tp_time) * bubble_inflation;
    let step_time = pipeline_time + dp_time;
    let tokens = workload.tokens_per_step() as f64;
    let gpus = f64::from(config.gpus());
    Ok(GpuRun {
        config,
        step_time_s: step_time,
        tokens_per_s: tokens / step_time,
        tokens_per_s_per_gpu: tokens / step_time / gpus,
        bubble_fraction: ((pipeline_time - compute_time - tp_time) / step_time).max(0.0),
        comm_fraction: (tp_time * bubble_inflation + dp_time) / step_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn xl(batch: u64) -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_xl(), batch, 1024, Precision::Fp16)
    }

    fn run(tp: u32, pp: u32, dp: u32, batch: u64) -> GpuRun {
        megatron_throughput(
            &GpuSpec::a100(),
            &xl(batch),
            MegatronConfig::new(tp, pp, dp),
        )
        .unwrap()
    }

    #[test]
    fn eight_gpu_ladder_matches_table3_order() {
        // Paper Table III: T8P1D1 (155) > T4P2D1 (145) > T2P4D1 (136) >
        // T1P8D1 (120) per GPU.
        let t8 = run(8, 1, 1, 64).tokens_per_s_per_gpu;
        let t4p2 = run(4, 2, 1, 64).tokens_per_s_per_gpu;
        let t2p4 = run(2, 4, 1, 64).tokens_per_s_per_gpu;
        let p8 = run(1, 8, 1, 64).tokens_per_s_per_gpu;
        assert!(t8 > t4p2, "{t8} {t4p2}");
        assert!(t4p2 > t2p4, "{t4p2} {t2p4}");
        assert!(t2p4 > p8, "{t2p4} {p8}");
        // The spread is tens of percent, not orders of magnitude.
        let spread = t8 / p8;
        assert!((1.1..1.8).contains(&spread), "{spread}");
    }

    #[test]
    fn large_batch_hides_the_bubble() {
        let small = run(8, 8, 1, 64);
        let large = run(8, 8, 1, 1024);
        assert!(large.bubble_fraction < small.bubble_fraction);
    }

    #[test]
    fn big_cluster_configs_stay_competitive() {
        // Paper: T8P8D16 at a 16× larger global batch is per-GPU
        // comparable to the single-node configs.
        let single = run(8, 1, 1, 64).tokens_per_s_per_gpu;
        let big = run(8, 8, 16, 8192).tokens_per_s_per_gpu;
        let ratio = big / single;
        assert!((0.6..1.3).contains(&ratio), "{ratio}");
    }

    #[test]
    fn invalid_layouts_rejected() {
        let err = megatron_throughput(&GpuSpec::a100(), &xl(64), MegatronConfig::new(16, 1, 1))
            .unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
        let err = megatron_throughput(&GpuSpec::a100(), &xl(3), MegatronConfig::new(1, 1, 2))
            .unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }

    #[test]
    fn dp_scales_aggregate_throughput() {
        let d1 = run(8, 1, 1, 64).tokens_per_s;
        let d4 = run(8, 1, 4, 256).tokens_per_s;
        assert!(d4 > 2.5 * d1, "{d4} vs {d1}");
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(MegatronConfig::new(8, 8, 16).label(), "T8P8D16");
        assert_eq!(MegatronConfig::new(8, 8, 16).gpus(), 1024);
    }
}
