//! # dabench-gpu
//!
//! A conventional-GPU reference baseline (the "GPU (Reference)" columns of
//! the paper's Table III), modelled as a von-Neumann / BSP machine running
//! Megatron-LM-style 3D parallelism:
//!
//! - **tensor parallelism** inside a node (per-layer activation allreduces
//!   over NVLink),
//! - **pipeline parallelism** across stages (fill/drain bubble governed by
//!   the micro-batch count),
//! - **data parallelism** across replicas (gradient allreduce over the
//!   cluster fabric, partially overlapped with backward).
//!
//! The model reproduces the reference rows' shape: at eight GPUs,
//! throughput degrades monotonically from pure TP to pure PP, and the
//! large-cluster configurations stay competitive per GPU because huge
//! global batches hide the pipeline bubble.
//!
//! # Example
//!
//! ```
//! use dabench_gpu::{megatron_throughput, GpuSpec, MegatronConfig};
//! use dabench_model::{ModelConfig, Precision, TrainingWorkload};
//!
//! let w = TrainingWorkload::new(ModelConfig::gpt2_xl(), 64, 1024, Precision::Fp16);
//! let run = megatron_throughput(&GpuSpec::a100(), &w, MegatronConfig::new(8, 1, 1)).unwrap();
//! assert!(run.tokens_per_s_per_gpu > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod infer;
mod parallelism;
mod platform_impl;

pub use chip::GpuSpec;
pub use infer::{admission_probe, infer_model};
pub use parallelism::{megatron_throughput, GpuRun, MegatronConfig};

/// A GPU cluster baseline platform.
#[derive(Debug, Clone)]
pub struct GpuCluster {
    spec: GpuSpec,
    // Precomputed at construction so memo-cache lookups allocate nothing.
    cache_key: dabench_core::CacheKey,
}

impl Default for GpuCluster {
    fn default() -> Self {
        Self::new(GpuSpec::default())
    }
}

pub(crate) fn cache_token_of(spec: &GpuSpec) -> String {
    format!("gpu|{spec:?}")
}

impl GpuCluster {
    /// Create a cluster model from a GPU spec.
    #[must_use]
    pub fn new(spec: GpuSpec) -> Self {
        let cache_key = dabench_core::CacheKey::of_token(&cache_token_of(&spec));
        Self { spec, cache_key }
    }

    /// Hardware description in use.
    #[must_use]
    pub fn gpu_spec(&self) -> &GpuSpec {
        &self.spec
    }
}
