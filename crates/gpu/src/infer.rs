//! GPU serving model: weights and KV cache in HBM.
//!
//! The reference baseline for the dataflow platforms: 80 GB of HBM at
//! 2 TB/s. Decode is memory-bound (the textbook LLM-serving regime) and
//! capacity is the binding constraint at large batch × long context —
//! exactly the gap FP8 KV caches and dataflow SRAM machines attack.

use crate::chip::GpuSpec;
use dabench_core::{max_admissible_batch, AdmissionProbe, InferModel};
use dabench_model::InferenceWorkload;

/// CUDA kernel-launch + scheduler overhead per decode step.
const LAUNCH_OVERHEAD_S: f64 = 20e-6;

/// Build the serving model of one GPU.
#[must_use]
pub fn infer_model(spec: &GpuSpec) -> InferModel {
    InferModel {
        platform: "gpu".into(),
        peak_tflops: spec.peak_tflops,
        sustained_efficiency: spec.mfu,
        mem_bw_bytes_per_s: spec.hbm_bw_bytes_per_s,
        kv_level: "hbm".into(),
        kv_capacity_bytes: spec.hbm_bytes,
        step_overhead_s: LAUNCH_OVERHEAD_S,
    }
}

/// Probe the HBM admission wall for `workload`'s shape: the largest
/// batch in `1..=limit` whose weights + KV cache fit HBM.
#[must_use]
pub fn admission_probe(spec: &GpuSpec, workload: &InferenceWorkload, limit: u64) -> AdmissionProbe {
    let model = infer_model(spec);
    max_admissible_batch(workload, limit, |_| model.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::{profile_inference, BoundKind, PlatformError};
    use dabench_model::{InferenceWorkload, ModelConfig, Precision};

    fn w(batch: u64, prompt: u64) -> InferenceWorkload {
        InferenceWorkload::new(
            ModelConfig::llama2_7b(),
            batch,
            prompt,
            128,
            Precision::Fp16,
        )
        .unwrap()
    }

    #[test]
    fn decode_is_memory_bound_prefill_is_not() {
        let m = infer_model(&GpuSpec::a100());
        let r = profile_inference(&m, &w(8, 512)).unwrap();
        assert_eq!(r.prefill_bound, BoundKind::ComputeBound);
        assert_eq!(r.decode_bound, BoundKind::MemoryBound);
    }

    #[test]
    fn hbm_overflows_at_large_batch_and_context() {
        let m = infer_model(&GpuSpec::a100());
        assert!(profile_inference(&m, &w(32, 512)).is_ok());
        let err = profile_inference(&m, &w(96, 2048)).unwrap_err();
        assert!(
            matches!(err, PlatformError::OutOfMemory { ref level, .. } if level == "hbm"),
            "{err}"
        );
    }

    #[test]
    fn fp8_kv_recovers_the_overflowing_point() {
        let m = infer_model(&GpuSpec::a100());
        let w8 = w(96, 2048).with_kv_precision(Precision::Fp8);
        assert!(profile_inference(&m, &w8).is_ok());
    }
}
