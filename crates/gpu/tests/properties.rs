//! Property-based tests of the Megatron cost model.

use dabench_gpu::{megatron_throughput, GpuSpec, MegatronConfig};
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use proptest::prelude::*;

fn workload(batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(ModelConfig::gpt2_xl(), batch, 1024, Precision::Fp16)
}

fn arb_layout() -> impl Strategy<Value = MegatronConfig> {
    (0u32..4, 0u32..4, 0u32..6).prop_map(|(t, p, d)| MegatronConfig::new(1 << t, 1 << p, 1 << d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid layouts always produce finite positive timings with bounded
    /// fractions.
    #[test]
    fn run_invariants(layout in arb_layout(), batch_log in 6u32..11) {
        let batch = 1u64 << batch_log;
        let Ok(run) = megatron_throughput(&GpuSpec::a100(), &workload(batch), layout) else {
            return Ok(()); // invalid layouts are rejected, that's fine
        };
        prop_assert!(run.step_time_s > 0.0 && run.step_time_s.is_finite());
        prop_assert!(run.tokens_per_s > 0.0);
        prop_assert!((run.tokens_per_s_per_gpu * f64::from(layout.gpus()) - run.tokens_per_s).abs()
            / run.tokens_per_s < 1e-12);
        prop_assert!((0.0..1.0).contains(&run.bubble_fraction));
        prop_assert!((0.0..1.0).contains(&run.comm_fraction));
    }

    /// Aggregate throughput never decreases when data parallelism widens
    /// (weak scaling with proportional batch).
    #[test]
    fn dp_weak_scaling_monotone(d_log in 0u32..5) {
        let d = 1u32 << d_log;
        let base = megatron_throughput(&GpuSpec::a100(), &workload(64), MegatronConfig::new(8, 1, 1))
            .unwrap();
        let scaled = megatron_throughput(
            &GpuSpec::a100(),
            &workload(64 * u64::from(d)),
            MegatronConfig::new(8, 1, d),
        )
        .unwrap();
        prop_assert!(scaled.tokens_per_s >= base.tokens_per_s * 0.9 * f64::from(d).sqrt());
    }

    /// More micro-batches never worsen the bubble fraction.
    #[test]
    fn bubble_shrinks_with_batch(batch_log in 6u32..12) {
        let small = megatron_throughput(
            &GpuSpec::a100(),
            &workload(1 << batch_log),
            MegatronConfig::new(1, 8, 1),
        )
        .unwrap();
        let large = megatron_throughput(
            &GpuSpec::a100(),
            &workload(1 << (batch_log + 1)),
            MegatronConfig::new(1, 8, 1),
        )
        .unwrap();
        prop_assert!(large.bubble_fraction <= small.bubble_fraction + 1e-12);
    }
}
