//! Property-based tests of the inference workload cost model.

use dabench_model::{InferenceWorkload, InferenceWorkloadError, ModelConfig, Precision};
use proptest::prelude::*;

fn workload(batch: u64, prompt: u64, decode: u64) -> InferenceWorkload {
    InferenceWorkload::new(
        ModelConfig::llama2_7b(),
        batch,
        prompt,
        decode,
        Precision::Fp16,
    )
    .expect("in-range dimensions")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decode arithmetic intensity falls monotonically as the context
    /// grows for any batched workload: each cached token adds attention
    /// FLOPs and KV bytes at a fixed 1 FLOP/B marginal ratio (h == kv_dim
    /// at FP16), below the batch-amortized weight-stream intensity of
    /// ~B FLOP/B — so long-context decode sinks toward the memory-bound
    /// asymptote. At B=1 the marginal ratio equals the asymptote and the
    /// curve is flat, which is exactly why batching is what creates
    /// intensity headroom to lose.
    #[test]
    fn decode_intensity_is_monotone_decreasing_in_context(
        batch_log in 1u32..7,
        ctx in 16u64..8192,
        step in 1u64..2048,
    ) {
        let w = workload(1u64 << batch_log, 128, 16);
        let near = w.decode_step_cost(ctx);
        let far = w.decode_step_cost(ctx + step);
        prop_assert!(
            far.intensity < near.intensity,
            "ctx {} -> {}: intensity {} !< {}",
            ctx, ctx + step, far.intensity, near.intensity
        );
    }

    /// Phase FLOPs are exactly linear in batch size: sequences do not
    /// interact, so a batch of B costs B single-sequence passes.
    #[test]
    fn phase_flops_are_linear_in_batch(
        batch in 2u64..128,
        prompt in 16u64..2048,
        decode in 1u64..256,
    ) {
        let one = workload(1, prompt, decode);
        let many = workload(batch, prompt, decode);
        let b = batch as f64;
        prop_assert!((many.prefill_cost().flops - b * one.prefill_cost().flops).abs()
            <= 1e-9 * many.prefill_cost().flops);
        prop_assert!((many.decode_cost().flops - b * one.decode_cost().flops).abs()
            <= 1e-9 * many.decode_cost().flops);
    }

    /// GQA shrinks the KV cache by exactly the head-grouping ratio:
    /// LLaMA-2-70B keeps 8 KV heads of 128 dims (kv_dim 1024) against
    /// 7B's full MHA kv_dim 4096 — a 4x smaller cache per layer-token at
    /// any context, exactly.
    #[test]
    fn gqa_cache_ratio_is_pinned_by_kv_dim(ctx in 1u64..16384) {
        let small = ModelConfig::llama2_7b();
        let large = ModelConfig::llama2_70b();
        prop_assert_eq!(small.kv_dim(), 4096);
        prop_assert_eq!(large.kv_dim(), 1024);
        let w7 = InferenceWorkload::new(small.clone(), 1, 128, 16, Precision::Fp16).unwrap();
        let w70 = InferenceWorkload::new(large.clone(), 1, 128, 16, Precision::Fp16).unwrap();
        let per_layer_7 = w7.kv_cache_bytes_per_seq(ctx) / small.num_layers;
        let per_layer_70 = w70.kv_cache_bytes_per_seq(ctx) / large.num_layers;
        prop_assert_eq!(per_layer_7, 4 * per_layer_70);
    }

    /// KV-cache bytes scale exactly with the storage precision while
    /// weights stay at the compute precision.
    #[test]
    fn kv_precision_halves_cache_not_weights(
        batch in 1u64..64,
        prompt in 16u64..2048,
    ) {
        let w16 = workload(batch, prompt, 64);
        let w8 = w16.clone().with_kv_precision(Precision::Fp8);
        prop_assert_eq!(w16.kv_cache_peak_bytes(), 2 * w8.kv_cache_peak_bytes());
        prop_assert_eq!(w16.weight_bytes(), w8.weight_bytes());
    }

    /// Absurd dimensions are rejected with a structured error, never a
    /// panic or a silent wrap.
    #[test]
    fn overflow_prone_dimensions_error_cleanly(shift in 30u32..63) {
        let huge = 1u64 << shift;
        let r = InferenceWorkload::new(
            ModelConfig::llama2_7b(),
            huge,
            huge,
            1,
            Precision::Fp16,
        );
        if let Err(e) = r {
            prop_assert!(matches!(
                e,
                InferenceWorkloadError::DimensionOverflow { .. }
            ));
        }
    }
}
