//! # dabench-model
//!
//! Workload descriptions for decoder-only large language models, used as the
//! input side of the DABench-LLM benchmarking framework.
//!
//! The crate answers one question precisely: *given a model architecture and
//! a training configuration, what work does one training step consist of?*
//! It provides:
//!
//! - [`ModelConfig`]: architectural descriptions of decoder-only
//!   transformers, with presets for the GPT-2 family and LLaMA-2 family used
//!   throughout the paper ([`ModelConfig::gpt2_small`],
//!   [`ModelConfig::llama2_7b`], …).
//! - [`ops`]: an operator catalogue — every forward and backward operator of
//!   a training step, with exact FLOP, parameter and byte accounting.
//! - [`TrainingWorkload`]: a model plus batch size, sequence length and
//!   numeric [`Precision`]; computes per-step FLOPs, memory traffic and the
//!   paper's arithmetic-intensity estimate (Eq. 5).
//!
//! # Example
//!
//! ```
//! use dabench_model::{ModelConfig, Precision, TrainingWorkload};
//!
//! let model = ModelConfig::gpt2_small();
//! assert_eq!(model.hidden_size, 768);
//!
//! let workload = TrainingWorkload::new(model, 8, 1024, Precision::Fp16);
//! // Training FLOPs follow the 6 * P * B * S convention used by the paper.
//! let approx = 6.0 * workload.model().parameter_count() as f64
//!     * (8 * 1024) as f64;
//! let exact = workload.training_flops_per_step();
//! assert!((exact - approx).abs() / approx < 0.35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod config;
mod inference;
mod intensity;
pub mod ops;
mod precision;
mod workload;

pub use activation::ActivationMemory;
pub use config::{Activation, ModelConfig, ModelConfigBuilder, Normalization, PositionalEncoding};
pub use inference::{BatchingMode, InferenceWorkload, InferenceWorkloadError, PhaseCost};
pub use intensity::arithmetic_intensity;
pub use precision::{Precision, PrecisionPolicy};
pub use workload::TrainingWorkload;
