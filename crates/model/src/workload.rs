//! Training workload: a model plus runtime configuration.

use crate::activation::ActivationMemory;
use crate::config::ModelConfig;
use crate::intensity::arithmetic_intensity;
use crate::ops::{self, Op, Phase};
use crate::precision::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully specified LLM training workload: model architecture, global batch
/// size, sequence length and element precision.
///
/// This is the unit handed to every platform model. All derived quantities
/// (FLOPs, bytes, arithmetic intensity) refer to **one optimizer step**.
///
/// # Example
///
/// ```
/// use dabench_model::{ModelConfig, Precision, TrainingWorkload};
///
/// let w = TrainingWorkload::new(ModelConfig::gpt2_small(), 16, 1024, Precision::Fp16);
/// assert_eq!(w.tokens_per_step(), 16 * 1024);
/// assert!(w.arithmetic_intensity() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrainingWorkload {
    model: ModelConfig,
    batch_size: u64,
    seq_len: u64,
    precision: Precision,
}

impl TrainingWorkload {
    /// Create a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `seq_len` is zero.
    #[must_use]
    pub fn new(model: ModelConfig, batch_size: u64, seq_len: u64, precision: Precision) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(seq_len > 0, "seq_len must be positive");
        Self {
            model,
            batch_size,
            seq_len,
            precision,
        }
    }

    /// The model architecture.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Global batch size in sequences.
    #[must_use]
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Sequence length in tokens.
    #[must_use]
    pub fn seq_len(&self) -> u64 {
        self.seq_len
    }

    /// Element precision of weights and activations.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Tokens processed per optimizer step (`B · S`).
    #[must_use]
    pub fn tokens_per_step(&self) -> u64 {
        self.batch_size * self.seq_len
    }

    /// Materialize the complete operator list of one training step.
    #[must_use]
    pub fn step_ops(&self) -> Vec<Op> {
        ops::training_step_ops(&self.model, self.batch_size, self.seq_len)
    }

    /// Exact forward-pass FLOPs of one step.
    #[must_use]
    pub fn forward_flops_per_step(&self) -> f64 {
        ops::phase_flops(&self.step_ops(), Phase::Forward)
    }

    /// Exact total training FLOPs of one step (fwd + bwd + update).
    #[must_use]
    pub fn training_flops_per_step(&self) -> f64 {
        ops::total_flops(&self.step_ops())
    }

    /// The paper's `6 · P · B · S` training-FLOP estimate for one step.
    #[must_use]
    pub fn nominal_training_flops_per_step(&self) -> f64 {
        6.0 * self.model.parameter_count() as f64 * self.tokens_per_step() as f64
    }

    /// Bytes of model weights at the workload precision.
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        self.model.parameter_count() * self.precision.bytes_per_element()
    }

    /// Bytes of gradients at the workload precision.
    #[must_use]
    pub fn gradient_bytes(&self) -> u64 {
        self.weight_bytes()
    }

    /// Bytes of Adam optimizer state (two FP32 moments per parameter).
    #[must_use]
    pub fn optimizer_bytes(&self) -> u64 {
        self.model.parameter_count() * 8
    }

    /// Activation memory accounting for one step.
    #[must_use]
    pub fn activation_memory(&self) -> ActivationMemory {
        ActivationMemory::for_step(&self.model, self.batch_size, self.seq_len, self.precision)
    }

    /// Arithmetic intensity per the paper's Eq. 5.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        arithmetic_intensity(
            self.model.parameter_count(),
            self.batch_size,
            self.seq_len,
            self.activation_memory().stored_bytes(),
        )
    }

    /// Total training-state footprint (weights + grads + optimizer), bytes.
    #[must_use]
    pub fn training_state_bytes(&self) -> u64 {
        self.weight_bytes() + self.gradient_bytes() + self.optimizer_bytes()
    }

    /// Returns a copy with a different batch size (Tier-2 sweeps).
    #[must_use]
    pub fn with_batch_size(&self, batch_size: u64) -> Self {
        Self::new(self.model.clone(), batch_size, self.seq_len, self.precision)
    }

    /// Returns a copy with a different precision (Tier-2 sweeps).
    #[must_use]
    pub fn with_precision(&self, precision: Precision) -> Self {
        Self::new(self.model.clone(), self.batch_size, self.seq_len, precision)
    }

    /// Returns a copy with a different model.
    #[must_use]
    pub fn with_model(&self, model: ModelConfig) -> Self {
        Self::new(model, self.batch_size, self.seq_len, self.precision)
    }
}

impl fmt::Display for TrainingWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B={} S={} {}",
            self.model, self.batch_size, self.seq_len, self.precision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 4, 1024, Precision::Fp16)
    }

    #[test]
    fn tokens_per_step() {
        assert_eq!(w().tokens_per_step(), 4096);
    }

    #[test]
    fn exact_flops_near_nominal() {
        let w = w();
        let ratio = w.training_flops_per_step() / w.nominal_training_flops_per_step();
        assert!((0.6..1.8).contains(&ratio), "{ratio}");
    }

    #[test]
    fn training_state_is_12_bytes_per_param_fp16() {
        let w = w();
        assert_eq!(w.training_state_bytes(), 12 * w.model().parameter_count());
    }

    #[test]
    fn with_batch_size_scales_flops() {
        let a = w();
        let b = a.with_batch_size(8);
        // The optimizer step is batch-independent, so the ratio is just
        // below 2.
        let ratio = b.training_flops_per_step() / a.training_flops_per_step();
        assert!((ratio - 2.0).abs() < 1e-2, "{ratio}");
    }

    #[test]
    fn intensity_grows_then_saturates_with_batch() {
        // AI grows with batch but sub-linearly once activations dominate.
        let a = w().with_batch_size(1).arithmetic_intensity();
        let b = w().with_batch_size(64).arithmetic_intensity();
        let c = w().with_batch_size(128).arithmetic_intensity();
        assert!(b > a);
        assert!(c / b < 1.6);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_rejected() {
        let _ = TrainingWorkload::new(ModelConfig::gpt2_mini(), 0, 128, Precision::Fp16);
    }
}
