//! Inference workload accounting (extension beyond the paper's
//! training-only scope).
//!
//! The paper's framework is defined for training, but its metrics only
//! need FLOP and byte accounting, so extending the workload model to
//! autoregressive inference is natural future work (and lets the roofline
//! analysis explain why decode is memory-bound on *every* platform). This
//! module provides exact prefill/decode accounting with KV-cache traffic,
//! a storage-precision knob for the cache (e.g. FP8 KV under BF16
//! compute), and the batching-mode axis that separates time-to-first-token
//! from steady-state decode throughput. See `docs/inference.md`.

use crate::config::ModelConfig;
use crate::precision::Precision;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Validation failure of an [`InferenceWorkload`] (same structured-error
/// pattern as `PlanSpec::validate` in `dabench-faults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceWorkloadError {
    /// A dimension that must be positive is zero.
    ZeroDimension {
        /// Field name (`batch_size`, `prompt_len`, or `decode_len`).
        field: &'static str,
    },
    /// A byte/FLOP product overflows `u64` — the workload is rejected up
    /// front instead of silently wrapping in the accounting.
    DimensionOverflow {
        /// The product that overflowed.
        term: &'static str,
    },
}

impl fmt::Display for InferenceWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceWorkloadError::ZeroDimension { field } => {
                write!(f, "{field} must be positive")
            }
            InferenceWorkloadError::DimensionOverflow { term } => {
                write!(
                    f,
                    "{term} overflows u64; workload dimensions are implausibly large"
                )
            }
        }
    }
}

impl Error for InferenceWorkloadError {}

/// How requests are scheduled onto the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BatchingMode {
    /// All `batch_size` prompts are prefilled together, then decoded in
    /// lock-step; a request's first token waits for the whole batch's
    /// prefill.
    #[default]
    Static,
    /// Slots are refilled as sequences finish (vLLM-style). Decode
    /// batches stay full, and a new request's first token only waits for
    /// its *own* prefill.
    Continuous,
}

impl BatchingMode {
    /// Stable lower-case name used in tables and CSV.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            BatchingMode::Static => "static",
            BatchingMode::Continuous => "continuous",
        }
    }
}

impl fmt::Display for BatchingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An autoregressive inference workload: prefill a prompt, then decode
/// tokens one at a time with a KV cache.
///
/// The KV cache may be stored at a narrower precision than the compute
/// format (`kv_precision`), mirroring how [`crate::PrecisionPolicy`]
/// distinguishes compute from master-copy storage for training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceWorkload {
    model: ModelConfig,
    batch_size: u64,
    prompt_len: u64,
    decode_len: u64,
    precision: Precision,
    kv_precision: Precision,
    batching: BatchingMode,
}

/// FLOP/byte accounting of one inference phase.
///
/// KV-cache traffic is split by direction so the asymmetry is explicit:
/// prefill only *writes* the cache (scores are formed from K/V tiles still
/// resident in the compute units), while every decode step *reads* the
/// whole cache and writes one new position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Weight bytes read.
    pub weight_bytes: f64,
    /// KV-cache bytes read.
    pub kv_read_bytes: f64,
    /// KV-cache bytes written.
    pub kv_write_bytes: f64,
    /// Arithmetic intensity, FLOPs/byte over all traffic.
    pub intensity: f64,
}

impl PhaseCost {
    /// Total memory traffic of the phase, bytes.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.kv_read_bytes + self.kv_write_bytes
    }

    /// KV-cache traffic in both directions, bytes.
    #[must_use]
    pub fn kv_bytes(&self) -> f64 {
        self.kv_read_bytes + self.kv_write_bytes
    }
}

impl InferenceWorkload {
    /// Create an inference workload with the KV cache stored at the
    /// compute precision and [`BatchingMode::Static`] scheduling. Use
    /// [`InferenceWorkload::with_kv_precision`] /
    /// [`InferenceWorkload::with_batching`] to change either axis.
    ///
    /// # Errors
    ///
    /// [`InferenceWorkloadError::ZeroDimension`] if any dimension is zero,
    /// [`InferenceWorkloadError::DimensionOverflow`] if the attention
    /// quadratic term or the peak KV-cache byte count would overflow
    /// `u64` (checked with `checked_mul`, never silently wrapped).
    pub fn new(
        model: ModelConfig,
        batch_size: u64,
        prompt_len: u64,
        decode_len: u64,
        precision: Precision,
    ) -> Result<Self, InferenceWorkloadError> {
        let w = Self {
            model,
            batch_size,
            prompt_len,
            decode_len,
            precision,
            kv_precision: precision,
            batching: BatchingMode::Static,
        };
        w.validate()?;
        Ok(w)
    }

    /// Validate dimensions: positivity plus overflow-freedom of every u64
    /// product the accounting forms. Overflow checks assume the widest
    /// storage format (FP32) so later [`Self::with_kv_precision`] calls
    /// can never re-introduce wraparound.
    fn validate(&self) -> Result<(), InferenceWorkloadError> {
        for (field, v) in [
            ("batch_size", self.batch_size),
            ("prompt_len", self.prompt_len),
            ("decode_len", self.decode_len),
        ] {
            if v == 0 {
                return Err(InferenceWorkloadError::ZeroDimension { field });
            }
        }
        let overflow = |term| InferenceWorkloadError::DimensionOverflow { term };
        // Attention quadratic term: prompt_len² must not wrap before the
        // f64 conversion in `prefill_cost`.
        self.prompt_len
            .checked_mul(self.prompt_len)
            .ok_or(overflow("prompt_len * prompt_len"))?;
        let ctx = self
            .prompt_len
            .checked_add(self.decode_len)
            .ok_or(overflow("prompt_len + decode_len"))?;
        // Peak per-sequence KV bytes at the widest storage precision…
        let per_seq = 2u64
            .checked_mul(self.model.num_layers)
            .and_then(|x| x.checked_mul(ctx))
            .and_then(|x| x.checked_mul(self.model.kv_dim()))
            .and_then(|x| x.checked_mul(Precision::Fp32.bytes_per_element()))
            .ok_or(overflow("2 * num_layers * ctx * kv_dim * bytes"))?;
        // …and across the batch.
        per_seq
            .checked_mul(self.batch_size)
            .ok_or(overflow("batch_size * kv_cache_bytes_per_seq"))?;
        Ok(())
    }

    /// Same workload with the KV cache stored at `kv_precision` (e.g.
    /// [`Precision::Fp8`] under FP16 compute). Infallible: `new` already
    /// bounds the KV products at the widest format.
    #[must_use]
    pub fn with_kv_precision(mut self, kv_precision: Precision) -> Self {
        self.kv_precision = kv_precision;
        self
    }

    /// Same workload under a different [`BatchingMode`].
    #[must_use]
    pub fn with_batching(mut self, batching: BatchingMode) -> Self {
        self.batching = batching;
        self
    }

    /// Same workload at a different batch size.
    ///
    /// # Errors
    ///
    /// See [`InferenceWorkload::new`].
    pub fn with_batch_size(&self, batch_size: u64) -> Result<Self, InferenceWorkloadError> {
        let mut w = self.clone();
        w.batch_size = batch_size;
        w.validate()?;
        Ok(w)
    }

    /// The model architecture.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Concurrent sequences per step.
    #[must_use]
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Prompt length in tokens.
    #[must_use]
    pub fn prompt_len(&self) -> u64 {
        self.prompt_len
    }

    /// Tokens generated per sequence.
    #[must_use]
    pub fn decode_len(&self) -> u64 {
        self.decode_len
    }

    /// Compute precision (weights and activations).
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Storage precision of the KV cache.
    #[must_use]
    pub fn kv_precision(&self) -> Precision {
        self.kv_precision
    }

    /// Scheduling mode.
    #[must_use]
    pub fn batching(&self) -> BatchingMode {
        self.batching
    }

    /// Final context length (`prompt_len + decode_len`).
    #[must_use]
    pub fn total_context(&self) -> u64 {
        self.prompt_len + self.decode_len
    }

    /// KV-cache bytes per sequence at context length `ctx`, at the
    /// cache's *storage* precision.
    #[must_use]
    pub fn kv_cache_bytes_per_seq(&self, ctx: u64) -> u64 {
        // K and V, one vector of kv_dim per layer per position.
        2 * self.model.num_layers
            * ctx
            * self.model.kv_dim()
            * self.kv_precision.bytes_per_element()
    }

    /// Peak KV-cache footprint of the whole batch, bytes (at the final
    /// context length). This is what a platform's memory model admits
    /// against.
    #[must_use]
    pub fn kv_cache_peak_bytes(&self) -> u64 {
        self.batch_size * self.kv_cache_bytes_per_seq(self.total_context())
    }

    /// Resident weight bytes at the compute precision.
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        self.model.parameter_count() * self.precision.bytes_per_element()
    }

    /// Cost of the prefill phase (the whole prompt in one pass).
    #[must_use]
    pub fn prefill_cost(&self) -> PhaseCost {
        let p = self.model.parameter_count() as f64;
        let tokens = (self.batch_size * self.prompt_len) as f64;
        // 2 FLOPs per parameter per token plus the attention quadratic
        // term. `prompt_len * prompt_len` cannot wrap: `new` rejects it
        // with checked_mul.
        let attn = 4.0
            * self.batch_size as f64
            * (self.prompt_len * self.prompt_len) as f64
            * self.model.hidden_size as f64
            * self.model.num_layers as f64;
        let flops = 2.0 * p * tokens + attn;
        let wb = p * self.precision.bytes_per_element() as f64;
        // Prefill builds the cache: write-only. K/V tiles are consumed by
        // the in-flight attention before ever leaving the compute units,
        // so no cache *read* traffic is charged here.
        let kv_write = (self.batch_size * self.kv_cache_bytes_per_seq(self.prompt_len)) as f64;
        PhaseCost {
            flops,
            weight_bytes: wb,
            kv_read_bytes: 0.0,
            kv_write_bytes: kv_write,
            intensity: flops / (wb + kv_write),
        }
    }

    /// Cost of one decode step at context length `ctx` (whole batch).
    #[must_use]
    pub fn decode_step_cost(&self, ctx: u64) -> PhaseCost {
        let p = self.model.parameter_count() as f64;
        let b = self.batch_size as f64;
        let attn =
            4.0 * b * ctx as f64 * self.model.hidden_size as f64 * self.model.num_layers as f64;
        let flops = 2.0 * p * b + attn;
        // Every decode step re-reads all weights and the full KV cache,
        // and appends one position per sequence.
        let wb = p * self.precision.bytes_per_element() as f64;
        let kv_read = b * self.kv_cache_bytes_per_seq(ctx) as f64;
        let kv_write = b * self.kv_cache_bytes_per_seq(1) as f64;
        PhaseCost {
            flops,
            weight_bytes: wb,
            kv_read_bytes: kv_read,
            kv_write_bytes: kv_write,
            intensity: flops / (wb + kv_read + kv_write),
        }
    }

    /// Total cost of the full decode phase (summed over steps).
    #[must_use]
    pub fn decode_cost(&self) -> PhaseCost {
        let mut flops = 0.0;
        let mut wb = 0.0;
        let mut kv_read = 0.0;
        let mut kv_write = 0.0;
        for i in 0..self.decode_len {
            let c = self.decode_step_cost(self.prompt_len + i);
            flops += c.flops;
            wb += c.weight_bytes;
            kv_read += c.kv_read_bytes;
            kv_write += c.kv_write_bytes;
        }
        PhaseCost {
            flops,
            weight_bytes: wb,
            kv_read_bytes: kv_read,
            kv_write_bytes: kv_write,
            intensity: flops / (wb + kv_read + kv_write),
        }
    }
}

impl fmt::Display for InferenceWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B={} prompt={} decode={} {} kv={} {}",
            self.model,
            self.batch_size,
            self.prompt_len,
            self.decode_len,
            self.precision,
            self.kv_precision,
            self.batching,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> InferenceWorkload {
        InferenceWorkload::new(ModelConfig::gpt2_small(), 8, 512, 128, Precision::Fp16)
            .expect("valid workload")
    }

    #[test]
    fn prefill_is_compute_dense_decode_is_not() {
        let w = w();
        let prefill = w.prefill_cost();
        let decode = w.decode_step_cost(512);
        // The well-known inference asymmetry: prefill AI ≫ decode AI.
        assert!(
            prefill.intensity > 20.0 * decode.intensity,
            "prefill {} vs decode {}",
            prefill.intensity,
            decode.intensity
        );
    }

    #[test]
    fn decode_intensity_near_batch_size() {
        // Weight-bound decode: AI ≈ 2·B FLOPs per weight byte / 2 bytes.
        let w = w();
        let c = w.decode_step_cost(512);
        assert!((c.intensity - w.batch_size as f64).abs() < 0.6 * w.batch_size as f64);
    }

    #[test]
    fn kv_cache_grows_linearly_with_context() {
        let w = w();
        assert_eq!(
            w.kv_cache_bytes_per_seq(1024),
            2 * w.kv_cache_bytes_per_seq(512)
        );
    }

    #[test]
    fn kv_precision_scales_cache_bytes_not_weights() {
        let fp16 = w();
        let fp8 = w().with_kv_precision(Precision::Fp8);
        assert_eq!(
            fp16.kv_cache_bytes_per_seq(512),
            2 * fp8.kv_cache_bytes_per_seq(512),
            "fp8 KV halves the cache"
        );
        // The compute path is untouched: same weights, same FLOPs.
        assert_eq!(fp16.weight_bytes(), fp8.weight_bytes());
        let (a, b) = (fp16.decode_step_cost(512), fp8.decode_step_cost(512));
        assert!((a.flops - b.flops).abs() < f64::EPSILON);
        assert!(b.kv_read_bytes < a.kv_read_bytes);
        assert!(b.intensity > a.intensity, "narrower cache raises decode AI");
    }

    #[test]
    fn prefill_kv_is_write_only_decode_reads_the_cache() {
        let w = w();
        let prefill = w.prefill_cost();
        assert_eq!(prefill.kv_read_bytes, 0.0);
        assert!(prefill.kv_write_bytes > 0.0);
        let decode = w.decode_step_cost(512);
        assert!(decode.kv_read_bytes > 0.0);
        // One appended position per step per sequence.
        assert!(
            (decode.kv_write_bytes - (8 * w.kv_cache_bytes_per_seq(1)) as f64).abs() < f64::EPSILON
        );
        assert!(
            (decode.total_bytes() - (decode.weight_bytes + decode.kv_bytes())).abs() < f64::EPSILON
        );
    }

    #[test]
    fn gqa_shrinks_the_kv_cache() {
        let mha = InferenceWorkload::new(ModelConfig::llama2_7b(), 1, 512, 16, Precision::Fp16)
            .expect("valid");
        let gqa = InferenceWorkload::new(ModelConfig::llama2_70b(), 1, 512, 16, Precision::Fp16)
            .expect("valid");
        // 70B has 8 KV heads of 128 → kv_dim 1024 vs 7B's 4096; per layer
        // the cache is 4× smaller despite the much larger model.
        let per_layer =
            |w: &InferenceWorkload| w.kv_cache_bytes_per_seq(512) / w.model().num_layers;
        assert!(per_layer(&gqa) < per_layer(&mha));
    }

    #[test]
    fn decode_cost_sums_steps() {
        let w = w();
        let total = w.decode_cost();
        let first = w.decode_step_cost(512);
        let last = w.decode_step_cost(512 + 127);
        assert!(total.flops > 127.0 * first.flops);
        assert!(total.flops < 129.0 * last.flops);
    }

    #[test]
    fn zero_dimensions_are_structured_errors() {
        let err = InferenceWorkload::new(ModelConfig::gpt2_mini(), 1, 0, 1, Precision::Fp16)
            .expect_err("zero prompt rejected");
        assert_eq!(
            err,
            InferenceWorkloadError::ZeroDimension {
                field: "prompt_len"
            }
        );
        assert!(format!("{err}").contains("prompt_len"));
        assert!(
            InferenceWorkload::new(ModelConfig::gpt2_mini(), 0, 1, 1, Precision::Fp16).is_err()
        );
        assert!(
            InferenceWorkload::new(ModelConfig::gpt2_mini(), 1, 1, 0, Precision::Fp16).is_err()
        );
    }

    #[test]
    fn overflow_prone_dimensions_are_rejected_not_wrapped() {
        // prompt_len² alone wraps u64.
        let err = InferenceWorkload::new(ModelConfig::gpt2_mini(), 1, 1 << 33, 1, Precision::Fp16)
            .expect_err("quadratic overflow rejected");
        assert!(matches!(
            err,
            InferenceWorkloadError::DimensionOverflow { .. }
        ));
        // Batch × per-seq cache wraps even at modest context.
        let err = InferenceWorkload::new(
            ModelConfig::llama2_7b(),
            u64::MAX / 2,
            512,
            16,
            Precision::Fp16,
        )
        .expect_err("batch overflow rejected");
        assert!(matches!(
            err,
            InferenceWorkloadError::DimensionOverflow { .. }
        ));
    }

    #[test]
    fn batching_and_display_round_trip() {
        let w = w().with_batching(BatchingMode::Continuous);
        assert_eq!(w.batching(), BatchingMode::Continuous);
        let s = format!("{w}");
        assert!(s.contains("continuous") && s.contains("kv=fp16"), "{s}");
        assert_eq!(BatchingMode::Static.as_str(), "static");
    }

    #[test]
    fn peak_kv_matches_final_context() {
        let w = w();
        assert_eq!(
            w.kv_cache_peak_bytes(),
            8 * w.kv_cache_bytes_per_seq(512 + 128)
        );
    }
}
