//! Inference workload accounting (extension beyond the paper's
//! training-only scope).
//!
//! The paper's framework is defined for training, but its metrics only
//! need FLOP and byte accounting, so extending the workload model to
//! autoregressive inference is natural future work (and lets the roofline
//! analysis explain why decode is memory-bound on *every* platform). This
//! module provides exact prefill/decode accounting with KV-cache traffic.

use crate::config::ModelConfig;
use crate::precision::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An autoregressive inference workload: prefill a prompt, then decode
/// tokens one at a time with a KV cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceWorkload {
    model: ModelConfig,
    batch_size: u64,
    prompt_len: u64,
    decode_len: u64,
    precision: Precision,
}

/// FLOP/byte accounting of one inference phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Weight bytes read.
    pub weight_bytes: f64,
    /// KV-cache bytes read and written.
    pub kv_bytes: f64,
    /// Arithmetic intensity, FLOPs/byte.
    pub intensity: f64,
}

impl InferenceWorkload {
    /// Create an inference workload.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        model: ModelConfig,
        batch_size: u64,
        prompt_len: u64,
        decode_len: u64,
        precision: Precision,
    ) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(prompt_len > 0, "prompt_len must be positive");
        assert!(decode_len > 0, "decode_len must be positive");
        Self {
            model,
            batch_size,
            prompt_len,
            decode_len,
            precision,
        }
    }

    /// The model architecture.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// KV-cache bytes per sequence at context length `ctx`.
    #[must_use]
    pub fn kv_cache_bytes_per_seq(&self, ctx: u64) -> u64 {
        // K and V, one vector of kv_dim per layer per position.
        2 * self.model.num_layers * ctx * self.model.kv_dim() * self.precision.bytes_per_element()
    }

    /// Cost of the prefill phase (the whole prompt in one pass).
    #[must_use]
    pub fn prefill_cost(&self) -> PhaseCost {
        let p = self.model.parameter_count() as f64;
        let tokens = (self.batch_size * self.prompt_len) as f64;
        // 2 FLOPs per parameter per token plus the attention quadratic term.
        let attn = 4.0
            * self.batch_size as f64
            * (self.prompt_len * self.prompt_len) as f64
            * self.model.hidden_size as f64
            * self.model.num_layers as f64;
        let flops = 2.0 * p * tokens + attn;
        let wb = p * self.precision.bytes_per_element() as f64;
        let kv = (self.batch_size * self.kv_cache_bytes_per_seq(self.prompt_len)) as f64;
        PhaseCost {
            flops,
            weight_bytes: wb,
            kv_bytes: kv,
            intensity: flops / (wb + kv),
        }
    }

    /// Cost of one decode step at context length `ctx` (whole batch).
    #[must_use]
    pub fn decode_step_cost(&self, ctx: u64) -> PhaseCost {
        let p = self.model.parameter_count() as f64;
        let b = self.batch_size as f64;
        let attn =
            4.0 * b * ctx as f64 * self.model.hidden_size as f64 * self.model.num_layers as f64;
        let flops = 2.0 * p * b + attn;
        // Every decode step re-reads all weights and the full KV cache.
        let wb = p * self.precision.bytes_per_element() as f64;
        let kv = b * self.kv_cache_bytes_per_seq(ctx) as f64;
        PhaseCost {
            flops,
            weight_bytes: wb,
            kv_bytes: kv,
            intensity: flops / (wb + kv),
        }
    }

    /// Total cost of the full decode phase (summed over steps).
    #[must_use]
    pub fn decode_cost(&self) -> PhaseCost {
        let mut flops = 0.0;
        let mut wb = 0.0;
        let mut kv = 0.0;
        for i in 0..self.decode_len {
            let c = self.decode_step_cost(self.prompt_len + i);
            flops += c.flops;
            wb += c.weight_bytes;
            kv += c.kv_bytes;
        }
        PhaseCost {
            flops,
            weight_bytes: wb,
            kv_bytes: kv,
            intensity: flops / (wb + kv),
        }
    }
}

impl fmt::Display for InferenceWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B={} prompt={} decode={} {}",
            self.model, self.batch_size, self.prompt_len, self.decode_len, self.precision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> InferenceWorkload {
        InferenceWorkload::new(ModelConfig::gpt2_small(), 8, 512, 128, Precision::Fp16)
    }

    #[test]
    fn prefill_is_compute_dense_decode_is_not() {
        let w = w();
        let prefill = w.prefill_cost();
        let decode = w.decode_step_cost(512);
        // The well-known inference asymmetry: prefill AI ≫ decode AI.
        assert!(
            prefill.intensity > 20.0 * decode.intensity,
            "prefill {} vs decode {}",
            prefill.intensity,
            decode.intensity
        );
    }

    #[test]
    fn decode_intensity_near_batch_size() {
        // Weight-bound decode: AI ≈ 2·B FLOPs per weight byte / 2 bytes.
        let w = w();
        let c = w.decode_step_cost(512);
        assert!((c.intensity - w.batch_size as f64).abs() < 0.6 * w.batch_size as f64);
    }

    #[test]
    fn kv_cache_grows_linearly_with_context() {
        let w = w();
        assert_eq!(
            w.kv_cache_bytes_per_seq(1024),
            2 * w.kv_cache_bytes_per_seq(512)
        );
    }

    #[test]
    fn gqa_shrinks_the_kv_cache() {
        let mha = InferenceWorkload::new(ModelConfig::llama2_7b(), 1, 512, 16, Precision::Fp16);
        let gqa = InferenceWorkload::new(ModelConfig::llama2_70b(), 1, 512, 16, Precision::Fp16);
        // 70B has 8 KV heads of 128 → kv_dim 1024 vs 7B's 4096; per layer
        // the cache is 4× smaller despite the much larger model.
        let per_layer =
            |w: &InferenceWorkload| w.kv_cache_bytes_per_seq(512) / w.model().num_layers;
        assert!(per_layer(&gqa) < per_layer(&mha));
    }

    #[test]
    fn decode_cost_sums_steps() {
        let w = w();
        let total = w.decode_cost();
        let first = w.decode_step_cost(512);
        let last = w.decode_step_cost(512 + 127);
        assert!(total.flops > 127.0 * first.flops);
        assert!(total.flops < 129.0 * last.flops);
    }

    #[test]
    #[should_panic(expected = "prompt_len")]
    fn zero_prompt_rejected() {
        let _ = InferenceWorkload::new(ModelConfig::gpt2_mini(), 1, 0, 1, Precision::Fp16);
    }
}
