//! Decoder-only transformer architecture descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Normalization layer variant used inside decoder blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Normalization {
    /// LayerNorm with learned scale and bias (GPT-2).
    LayerNorm,
    /// RMSNorm with learned scale only (LLaMA-2).
    RmsNorm,
}

/// Feed-forward activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// GELU as used by GPT-2 (two-matrix MLP).
    Gelu,
    /// SwiGLU as used by LLaMA-2 (three-matrix gated MLP).
    SwiGlu,
}

/// Positional-encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PositionalEncoding {
    /// Learned absolute position embeddings (GPT-2).
    Learned,
    /// Rotary position embeddings applied to Q/K (LLaMA-2).
    Rotary,
}

/// Architectural description of a decoder-only transformer.
///
/// All counts are in elements (not bytes). Construct via the presets
/// ([`ModelConfig::gpt2_small`], [`ModelConfig::llama2_7b`], …), the generic
/// decoder-block probes used by the paper's sweeps
/// ([`ModelConfig::gpt2_probe`]), or the [`ModelConfigBuilder`].
///
/// # Example
///
/// ```
/// use dabench_model::ModelConfig;
///
/// let m = ModelConfig::gpt2_small();
/// // GPT-2 Small is ~124M parameters.
/// let p = m.parameter_count();
/// assert!(p > 115_000_000 && p < 135_000_000, "param count {p}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"gpt2-small"`.
    pub name: String,
    /// Model (embedding) dimension, `h` in the paper.
    pub hidden_size: u64,
    /// Number of decoder layers.
    pub num_layers: u64,
    /// Number of attention heads.
    pub num_heads: u64,
    /// Number of key/value heads (GQA); equals `num_heads` without GQA.
    pub num_kv_heads: u64,
    /// Feed-forward inner dimension.
    pub ffn_hidden: u64,
    /// Vocabulary size.
    pub vocab_size: u64,
    /// Maximum (and assumed training) context length the model was built for.
    pub max_seq_len: u64,
    /// Normalization variant.
    pub normalization: Normalization,
    /// MLP activation variant.
    pub activation: Activation,
    /// Positional encoding variant.
    pub positional: PositionalEncoding,
    /// Whether input embedding and LM head share weights (GPT-2 does).
    pub tied_embeddings: bool,
}

impl ModelConfig {
    /// Start building a custom configuration.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ModelConfigBuilder {
        ModelConfigBuilder::new(name)
    }

    // ----- GPT-2 family presets (learned positions, LayerNorm, GELU) -----

    fn gpt2_family(name: &str, hidden: u64, layers: u64, heads: u64) -> Self {
        Self {
            name: name.to_owned(),
            hidden_size: hidden,
            num_layers: layers,
            num_heads: heads,
            num_kv_heads: heads,
            ffn_hidden: 4 * hidden,
            vocab_size: 50_257,
            max_seq_len: 1024,
            normalization: Normalization::LayerNorm,
            activation: Activation::Gelu,
            positional: PositionalEncoding::Learned,
            tied_embeddings: true,
        }
    }

    /// GPT "mini": hidden size 256 (used in the paper's WSE replica study).
    #[must_use]
    pub fn gpt2_mini() -> Self {
        Self::gpt2_family("gpt2-mini", 256, 4, 4)
    }

    /// GPT "tiny": hidden size 512.
    #[must_use]
    pub fn gpt2_tiny() -> Self {
        Self::gpt2_family("gpt2-tiny", 512, 8, 8)
    }

    /// GPT-2 Small: hidden size 768, 12 layers (~124M parameters).
    #[must_use]
    pub fn gpt2_small() -> Self {
        Self::gpt2_family("gpt2-small", 768, 12, 12)
    }

    /// GPT-2 Medium: hidden size 1024, 24 layers (~350M parameters).
    #[must_use]
    pub fn gpt2_medium() -> Self {
        Self::gpt2_family("gpt2-medium", 1024, 24, 16)
    }

    /// GPT-2 Large: hidden size 1280, 36 layers (~774M parameters).
    #[must_use]
    pub fn gpt2_large() -> Self {
        Self::gpt2_family("gpt2-large", 1280, 36, 20)
    }

    /// GPT-2 XL ("xlarge" in Table III): hidden size 1600, 48 layers (~1.5B).
    #[must_use]
    pub fn gpt2_xl() -> Self {
        Self::gpt2_family("gpt2-xl", 1600, 48, 25)
    }

    /// A GPT-2-style probe block: hidden size `hidden_size` and
    /// `num_layers` decoder layers, everything else as GPT-2.
    ///
    /// This is the paper's workhorse: the decoder-block methodology fixes
    /// one of (hidden size, layer count) and sweeps the other.
    #[must_use]
    pub fn gpt2_probe(hidden_size: u64, num_layers: u64) -> Self {
        // Head dim 64 where divisible, else a single head.
        let heads = if hidden_size.is_multiple_of(64) {
            hidden_size / 64
        } else {
            1
        };
        let mut cfg = Self::gpt2_family(
            &format!("gpt2-h{hidden_size}-l{num_layers}"),
            hidden_size,
            num_layers,
            heads,
        );
        cfg.num_kv_heads = heads;
        cfg
    }

    // ----- LLaMA-2 family presets (RoPE, RMSNorm, SwiGLU) -----

    fn llama2_family(
        name: &str,
        hidden: u64,
        layers: u64,
        heads: u64,
        kv_heads: u64,
        ffn: u64,
    ) -> Self {
        Self {
            name: name.to_owned(),
            hidden_size: hidden,
            num_layers: layers,
            num_heads: heads,
            num_kv_heads: kv_heads,
            ffn_hidden: ffn,
            vocab_size: 32_000,
            max_seq_len: 4096,
            normalization: Normalization::RmsNorm,
            activation: Activation::SwiGlu,
            positional: PositionalEncoding::Rotary,
            tied_embeddings: false,
        }
    }

    /// LLaMA-2 7B: hidden 4096, 32 layers, MHA.
    #[must_use]
    pub fn llama2_7b() -> Self {
        Self::llama2_family("llama2-7b", 4096, 32, 32, 32, 11_008)
    }

    /// LLaMA-2 13B: hidden 5120, 40 layers, MHA.
    #[must_use]
    pub fn llama2_13b() -> Self {
        Self::llama2_family("llama2-13b", 5120, 40, 40, 40, 13_824)
    }

    /// LLaMA-2 70B: hidden 8192, 80 layers, GQA with 8 KV heads.
    #[must_use]
    pub fn llama2_70b() -> Self {
        Self::llama2_family("llama2-70b", 8192, 80, 64, 8, 28_672)
    }

    /// A LLaMA-2-style probe block: hidden size `hidden_size`,
    /// `num_layers` layers, SwiGLU FFN sized by the LLaMA-2 2/3·4h rule
    /// rounded to a multiple of 256.
    #[must_use]
    pub fn llama2_probe(hidden_size: u64, num_layers: u64) -> Self {
        let heads = if hidden_size.is_multiple_of(128) {
            hidden_size / 128
        } else {
            1
        };
        let raw = 8 * hidden_size / 3;
        let ffn = raw.div_ceil(256) * 256;
        Self::llama2_family(
            &format!("llama2-h{hidden_size}-l{num_layers}"),
            hidden_size,
            num_layers,
            heads,
            heads,
            ffn,
        )
    }

    // ----- Derived quantities -----

    /// Head dimension (`hidden_size / num_heads`).
    #[must_use]
    pub fn head_dim(&self) -> u64 {
        self.hidden_size / self.num_heads
    }

    /// Projection width of the K/V matrices (smaller than `hidden_size`
    /// under grouped-query attention).
    #[must_use]
    pub fn kv_dim(&self) -> u64 {
        self.num_kv_heads * self.head_dim()
    }

    /// Parameters in one decoder layer.
    #[must_use]
    pub fn layer_parameter_count(&self) -> u64 {
        let h = self.hidden_size;
        let kv = self.kv_dim();
        let f = self.ffn_hidden;
        // Attention: Q (h*h) + K,V (h*kv each) + output (h*h).
        let mut attn = h * h + 2 * h * kv + h * h;
        // MLP.
        let mut mlp = match self.activation {
            Activation::Gelu => 2 * h * f,
            Activation::SwiGlu => 3 * h * f,
        };
        // Biases: GPT-2 has them everywhere, LLaMA-2 nowhere.
        let norm = match self.normalization {
            Normalization::LayerNorm => 2 * 2 * h, // two norms, scale + bias
            Normalization::RmsNorm => 2 * h,       // two norms, scale only
        };
        if self.normalization == Normalization::LayerNorm {
            attn += h + 2 * kv + h; // fused qkv bias + out bias
            mlp += f + h;
        }
        attn + mlp + norm
    }

    /// Parameters in the embedding tables (token + positional if learned).
    #[must_use]
    pub fn embedding_parameter_count(&self) -> u64 {
        let tok = self.vocab_size * self.hidden_size;
        let pos = match self.positional {
            PositionalEncoding::Learned => self.max_seq_len * self.hidden_size,
            PositionalEncoding::Rotary => 0,
        };
        tok + pos
    }

    /// Parameters in the LM head (0 if tied to the input embedding).
    #[must_use]
    pub fn lm_head_parameter_count(&self) -> u64 {
        if self.tied_embeddings {
            0
        } else {
            self.vocab_size * self.hidden_size
        }
    }

    /// Parameters in the final normalization layer.
    #[must_use]
    pub fn final_norm_parameter_count(&self) -> u64 {
        match self.normalization {
            Normalization::LayerNorm => 2 * self.hidden_size,
            Normalization::RmsNorm => self.hidden_size,
        }
    }

    /// Total parameter count, `P` in the paper's Eq. 5.
    #[must_use]
    pub fn parameter_count(&self) -> u64 {
        self.embedding_parameter_count()
            + self.num_layers * self.layer_parameter_count()
            + self.final_norm_parameter_count()
            + self.lm_head_parameter_count()
    }

    /// Returns a copy with a different number of layers (paper-style sweep).
    #[must_use]
    pub fn with_layers(&self, num_layers: u64) -> Self {
        let mut cfg = self.clone();
        cfg.num_layers = num_layers;
        cfg.name = format!("{}-l{num_layers}", self.name);
        cfg
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (h={}, L={}, heads={}, P={:.1}M)",
            self.name,
            self.hidden_size,
            self.num_layers,
            self.num_heads,
            self.parameter_count() as f64 / 1e6
        )
    }
}

/// Builder for custom [`ModelConfig`] values.
///
/// # Example
///
/// ```
/// use dabench_model::{Activation, ModelConfig, Normalization};
///
/// let cfg = ModelConfig::builder("custom")
///     .hidden_size(1024)
///     .num_layers(16)
///     .num_heads(16)
///     .activation(Activation::SwiGlu)
///     .normalization(Normalization::RmsNorm)
///     .build();
/// assert_eq!(cfg.ffn_hidden, 4096); // defaults to 4*h
/// ```
#[derive(Debug, Clone)]
pub struct ModelConfigBuilder {
    cfg: ModelConfig,
    ffn_set: bool,
    kv_set: bool,
}

impl ModelConfigBuilder {
    /// Create a builder with GPT-2-Small-like defaults.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let mut cfg = ModelConfig::gpt2_small();
        cfg.name = name.into();
        Self {
            cfg,
            ffn_set: false,
            kv_set: false,
        }
    }

    /// Set the hidden size.
    #[must_use]
    pub fn hidden_size(mut self, h: u64) -> Self {
        self.cfg.hidden_size = h;
        self
    }

    /// Set the number of decoder layers.
    #[must_use]
    pub fn num_layers(mut self, l: u64) -> Self {
        self.cfg.num_layers = l;
        self
    }

    /// Set the number of attention heads.
    #[must_use]
    pub fn num_heads(mut self, n: u64) -> Self {
        self.cfg.num_heads = n;
        self
    }

    /// Set the number of KV heads (enables GQA when smaller than heads).
    #[must_use]
    pub fn num_kv_heads(mut self, n: u64) -> Self {
        self.cfg.num_kv_heads = n;
        self.kv_set = true;
        self
    }

    /// Set the FFN inner dimension (defaults to `4 * hidden_size`).
    #[must_use]
    pub fn ffn_hidden(mut self, f: u64) -> Self {
        self.cfg.ffn_hidden = f;
        self.ffn_set = true;
        self
    }

    /// Set the vocabulary size.
    #[must_use]
    pub fn vocab_size(mut self, v: u64) -> Self {
        self.cfg.vocab_size = v;
        self
    }

    /// Set the maximum sequence length.
    #[must_use]
    pub fn max_seq_len(mut self, s: u64) -> Self {
        self.cfg.max_seq_len = s;
        self
    }

    /// Set the normalization variant.
    #[must_use]
    pub fn normalization(mut self, n: Normalization) -> Self {
        self.cfg.normalization = n;
        self
    }

    /// Set the activation variant.
    #[must_use]
    pub fn activation(mut self, a: Activation) -> Self {
        self.cfg.activation = a;
        self
    }

    /// Set the positional-encoding variant.
    #[must_use]
    pub fn positional(mut self, p: PositionalEncoding) -> Self {
        self.cfg.positional = p;
        self
    }

    /// Set whether embeddings are tied to the LM head.
    #[must_use]
    pub fn tied_embeddings(mut self, tied: bool) -> Self {
        self.cfg.tied_embeddings = tied;
        self
    }

    /// Finalize the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_size` is not divisible by `num_heads`, or if any
    /// dimension is zero.
    #[must_use]
    pub fn build(mut self) -> ModelConfig {
        if !self.ffn_set {
            self.cfg.ffn_hidden = 4 * self.cfg.hidden_size;
        }
        if !self.kv_set {
            self.cfg.num_kv_heads = self.cfg.num_heads;
        }
        assert!(self.cfg.hidden_size > 0, "hidden_size must be positive");
        assert!(self.cfg.num_layers > 0, "num_layers must be positive");
        assert!(self.cfg.num_heads > 0, "num_heads must be positive");
        assert!(
            self.cfg.hidden_size.is_multiple_of(self.cfg.num_heads),
            "hidden_size {} not divisible by num_heads {}",
            self.cfg.hidden_size,
            self.cfg.num_heads
        );
        assert!(
            self.cfg.num_heads.is_multiple_of(self.cfg.num_kv_heads),
            "num_heads {} not divisible by num_kv_heads {}",
            self.cfg.num_heads,
            self.cfg.num_kv_heads
        );
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_small_param_count_is_canonical() {
        // GPT-2 Small is 124M parameters (117M without position embeddings
        // depending on how you count); accept the 120-130M band.
        let p = ModelConfig::gpt2_small().parameter_count();
        assert!((120_000_000..135_000_000).contains(&p), "{p}");
    }

    #[test]
    fn gpt2_xl_is_about_1_5b() {
        let p = ModelConfig::gpt2_xl().parameter_count();
        assert!((1_400_000_000..1_700_000_000).contains(&p), "{p}");
    }

    #[test]
    fn llama2_7b_param_count_is_canonical() {
        let p = ModelConfig::llama2_7b().parameter_count();
        assert!((6_500_000_000..7_100_000_000).contains(&p), "{p}");
    }

    #[test]
    fn llama2_70b_uses_gqa() {
        let m = ModelConfig::llama2_70b();
        assert_eq!(m.kv_dim(), 1024);
        let p = m.parameter_count();
        assert!((65_000_000_000..72_000_000_000).contains(&p), "{p}");
    }

    #[test]
    fn gpt2_layer_params_match_12h2_plus_13h() {
        // Classic GPT-2 identity: per-layer params = 12 h^2 + 13 h.
        let m = ModelConfig::gpt2_small();
        let h = m.hidden_size;
        assert_eq!(m.layer_parameter_count(), 12 * h * h + 13 * h);
    }

    #[test]
    fn probe_scales_linearly_in_layers() {
        let p1 = ModelConfig::gpt2_probe(768, 1).parameter_count();
        let p2 = ModelConfig::gpt2_probe(768, 2).parameter_count();
        let p3 = ModelConfig::gpt2_probe(768, 3).parameter_count();
        assert_eq!(p3 - p2, p2 - p1);
    }

    #[test]
    fn with_layers_changes_only_layers() {
        let base = ModelConfig::gpt2_small();
        let deeper = base.with_layers(24);
        assert_eq!(deeper.num_layers, 24);
        assert_eq!(deeper.hidden_size, base.hidden_size);
    }

    #[test]
    fn builder_defaults_ffn_and_kv() {
        let cfg = ModelConfig::builder("x")
            .hidden_size(512)
            .num_heads(8)
            .build();
        assert_eq!(cfg.ffn_hidden, 2048);
        assert_eq!(cfg.num_kv_heads, 8);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn builder_rejects_indivisible_heads() {
        let _ = ModelConfig::builder("bad")
            .hidden_size(100)
            .num_heads(3)
            .build();
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", ModelConfig::gpt2_small());
        assert!(s.contains("gpt2-small"));
        assert!(s.contains("h=768"));
    }

    #[test]
    fn llama_probe_rounds_ffn() {
        let m = ModelConfig::llama2_probe(4096, 2);
        assert_eq!(m.ffn_hidden % 256, 0);
        assert!(m.ffn_hidden >= 8 * 4096 / 3);
    }
}
