//! Numeric precision formats supported by the benchmarked accelerators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A numeric storage/compute format for model weights and activations.
///
/// The three accelerators in the paper expose different format menus:
/// the WSE-2 supports IEEE FP16 and Cerebras' own `CB16` block format, the
/// RDU trains in BF16 (optionally mixed with FP32 master weights), and the
/// IPU offers FP32 ("full") and FP16-based mixed precision. The GPU
/// reference uses FP16 mixed precision.
///
/// # Example
///
/// ```
/// use dabench_model::Precision;
/// assert_eq!(Precision::Fp16.bytes_per_element(), 2);
/// assert!(Precision::Fp32.bytes_per_element() > Precision::Bf16.bytes_per_element());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// IEEE 754 single precision (32-bit).
    Fp32,
    /// IEEE 754 half precision (16-bit).
    #[default]
    Fp16,
    /// bfloat16 (16-bit, FP32 exponent range).
    Bf16,
    /// Cerebras `CB16` block floating point (16-bit storage with shared
    /// exponent handling in the fabric).
    Cb16,
    /// 8-bit floating point (E4M3/E5M2-style). Used as a *storage* format
    /// for inference KV caches; none of the modelled platforms computes
    /// in FP8, so training workloads do not accept it.
    Fp8,
}

impl Precision {
    /// Storage size of one element in bytes.
    #[must_use]
    pub const fn bytes_per_element(self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 | Precision::Bf16 | Precision::Cb16 => 2,
            Precision::Fp8 => 1,
        }
    }

    /// Whether this is a 16-bit ("half-width") format.
    #[must_use]
    pub const fn is_half_width(self) -> bool {
        matches!(self, Precision::Fp16 | Precision::Bf16 | Precision::Cb16)
    }

    /// Short lowercase name used in reports, e.g. `"fp16"`.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Fp16 => "fp16",
            Precision::Bf16 => "bf16",
            Precision::Cb16 => "cb16",
            Precision::Fp8 => "fp8",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A training-time precision policy: which format carries the bulk of the
/// compute, and whether FP32 master copies are kept (mixed precision).
///
/// Table IV of the paper compares "Full" against "Mixed" policies on the IPU
/// and RDU, and FP16 against CB16 on the WSE. [`PrecisionPolicy`] captures
/// that axis independently of the element format.
///
/// # Example
///
/// ```
/// use dabench_model::{Precision, PrecisionPolicy};
/// let mixed = PrecisionPolicy::mixed(Precision::Bf16);
/// assert!(mixed.is_mixed());
/// assert_eq!(mixed.compute(), Precision::Bf16);
/// // Mixed precision keeps an FP32 master copy, so optimizer state is wider.
/// assert_eq!(mixed.master_bytes_per_param(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrecisionPolicy {
    compute: Precision,
    mixed: bool,
}

impl PrecisionPolicy {
    /// Pure single-format training in `compute` precision.
    #[must_use]
    pub const fn pure(compute: Precision) -> Self {
        Self {
            compute,
            mixed: false,
        }
    }

    /// Mixed-precision training: compute in `compute`, FP32 master weights.
    #[must_use]
    pub const fn mixed(compute: Precision) -> Self {
        Self {
            compute,
            mixed: true,
        }
    }

    /// Full FP32 training ("Full" column of Table IV).
    #[must_use]
    pub const fn full() -> Self {
        Self::pure(Precision::Fp32)
    }

    /// The format arithmetic is performed in.
    #[must_use]
    pub const fn compute(self) -> Precision {
        self.compute
    }

    /// Whether FP32 master weights are kept alongside low-precision compute.
    #[must_use]
    pub const fn is_mixed(self) -> bool {
        self.mixed
    }

    /// Bytes per parameter for the master copy used by the optimizer.
    #[must_use]
    pub const fn master_bytes_per_param(self) -> u64 {
        if self.mixed {
            4
        } else {
            self.compute.bytes_per_element()
        }
    }

    /// Bytes per parameter of the working (compute) copy of the weights.
    #[must_use]
    pub const fn working_bytes_per_param(self) -> u64 {
        self.compute.bytes_per_element()
    }

    /// Human-readable label, e.g. `"mixed(bf16)"` or `"fp32"`.
    #[must_use]
    pub fn label(self) -> String {
        if self.mixed {
            format!("mixed({})", self.compute)
        } else {
            self.compute.as_str().to_owned()
        }
    }
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        Self::pure(Precision::Fp16)
    }
}

impl fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(Precision::Fp32.bytes_per_element(), 4);
        assert_eq!(Precision::Fp16.bytes_per_element(), 2);
        assert_eq!(Precision::Bf16.bytes_per_element(), 2);
        assert_eq!(Precision::Cb16.bytes_per_element(), 2);
        assert_eq!(Precision::Fp8.bytes_per_element(), 1);
    }

    #[test]
    fn fp8_is_not_half_width() {
        // `is_half_width` means "16-bit"; FP8 is narrower still.
        assert!(!Precision::Fp8.is_half_width());
        assert_eq!(format!("{}", Precision::Fp8), "fp8");
    }

    #[test]
    fn half_width_classification() {
        assert!(!Precision::Fp32.is_half_width());
        assert!(Precision::Fp16.is_half_width());
        assert!(Precision::Cb16.is_half_width());
    }

    #[test]
    fn mixed_policy_keeps_fp32_master() {
        let p = PrecisionPolicy::mixed(Precision::Fp16);
        assert_eq!(p.master_bytes_per_param(), 4);
        assert_eq!(p.working_bytes_per_param(), 2);
    }

    #[test]
    fn pure_policy_master_matches_compute() {
        let p = PrecisionPolicy::pure(Precision::Bf16);
        assert_eq!(p.master_bytes_per_param(), 2);
        assert!(!p.is_mixed());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PrecisionPolicy::full().label(), "fp32");
        assert_eq!(
            PrecisionPolicy::mixed(Precision::Bf16).label(),
            "mixed(bf16)"
        );
        assert_eq!(format!("{}", Precision::Cb16), "cb16");
    }
}
