//! Activation-memory accounting for transformer training.

use crate::config::ModelConfig;
use crate::ops::{self, Phase};
use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Activation memory required by one training step.
///
/// Two estimates are exposed:
///
/// - [`ActivationMemory::stored_bytes`]: everything the forward pass
///   produces and must keep live for the backward pass (the conservative,
///   no-recomputation number used in the paper's Eq. 5 denominator).
/// - [`ActivationMemory::peak_working_bytes`]: the largest single tensor,
///   a lower bound for streaming-style executors.
///
/// # Example
///
/// ```
/// use dabench_model::{ActivationMemory, ModelConfig, Precision};
///
/// let cfg = ModelConfig::gpt2_small();
/// let act = ActivationMemory::for_step(&cfg, 8, 1024, Precision::Fp16);
/// assert!(act.stored_bytes() > act.peak_working_bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationMemory {
    stored_bytes: u64,
    peak_working_bytes: u64,
    per_layer_bytes: u64,
}

impl ActivationMemory {
    /// Compute activation memory for one training step of `cfg` at the
    /// given batch size, sequence length and element precision.
    #[must_use]
    pub fn for_step(cfg: &ModelConfig, batch: u64, seq: u64, precision: Precision) -> Self {
        let step = ops::step_records(cfg, batch, seq);
        let elem = precision.bytes_per_element();
        let stored: u64 = step
            .iter()
            .filter(|r| r.phase == Phase::Forward)
            .map(|r| r.cost.out_elems)
            .sum();
        let peak: u64 = step
            .iter()
            .map(|r| r.cost.out_elems.max(r.cost.in_elems))
            .max()
            .unwrap_or(0);
        let layer0: u64 = step
            .iter()
            .filter(|r| r.phase == Phase::Forward && r.layer == Some(0))
            .map(|r| r.cost.out_elems)
            .sum();
        Self {
            stored_bytes: stored * elem,
            peak_working_bytes: peak * elem,
            per_layer_bytes: layer0 * elem,
        }
    }

    /// Total forward activations retained for the backward pass, in bytes.
    #[must_use]
    pub const fn stored_bytes(self) -> u64 {
        self.stored_bytes
    }

    /// Size of the largest individual activation tensor, in bytes.
    #[must_use]
    pub const fn peak_working_bytes(self) -> u64 {
        self.peak_working_bytes
    }

    /// Stored activations attributable to a single decoder layer, in bytes.
    #[must_use]
    pub const fn per_layer_bytes(self) -> u64 {
        self.per_layer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn stored_scales_linearly_with_batch() {
        let cfg = ModelConfig::gpt2_probe(768, 4);
        let a = ActivationMemory::for_step(&cfg, 1, 512, Precision::Fp16);
        let b = ActivationMemory::for_step(&cfg, 3, 512, Precision::Fp16);
        assert_eq!(b.stored_bytes(), 3 * a.stored_bytes());
    }

    #[test]
    fn precision_halves_memory() {
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let half = ActivationMemory::for_step(&cfg, 2, 256, Precision::Fp16);
        let full = ActivationMemory::for_step(&cfg, 2, 256, Precision::Fp32);
        assert_eq!(full.stored_bytes(), 2 * half.stored_bytes());
    }

    #[test]
    fn per_layer_is_layer_marginal_cost() {
        let a =
            ActivationMemory::for_step(&ModelConfig::gpt2_probe(768, 2), 2, 256, Precision::Fp16);
        let b =
            ActivationMemory::for_step(&ModelConfig::gpt2_probe(768, 3), 2, 256, Precision::Fp16);
        assert_eq!(b.stored_bytes() - a.stored_bytes(), a.per_layer_bytes());
    }

    #[test]
    fn attention_quadratic_term_present() {
        // Doubling the sequence length more than doubles stored activations
        // because of the S^2 attention-score tensors.
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let s1 = ActivationMemory::for_step(&cfg, 1, 512, Precision::Fp16).stored_bytes();
        let s2 = ActivationMemory::for_step(&cfg, 1, 1024, Precision::Fp16).stored_bytes();
        assert!(s2 > 2 * s1);
    }
}
