//! Arithmetic-intensity estimation (Eq. 5 of the paper).

/// Estimate the arithmetic intensity of one LLM training step, in
/// FLOPs/byte, following the paper's Eq. 5:
///
/// ```text
///        6 · P · B · S
/// AI = -------------------
///       4 · P + A_bytes
/// ```
///
/// where `P` is the parameter count, `B` the batch size, `S` the sequence
/// length and `A_bytes` the stored activation memory. The `6·P·B·S`
/// numerator is the standard forward (2×) + backward (4×) FLOPs-per-token
/// estimate; the `4·P` term charges one read of the 16-bit weights and one
/// write of the 16-bit gradients.
///
/// # Example
///
/// ```
/// use dabench_model::arithmetic_intensity;
/// let ai = arithmetic_intensity(124e6 as u64, 8, 1024, 4 * 1024 * 1024 * 1024);
/// assert!(ai > 1.0);
/// ```
#[must_use]
pub fn arithmetic_intensity(params: u64, batch: u64, seq: u64, activation_bytes: u64) -> f64 {
    let p = params as f64;
    let flops = 6.0 * p * (batch * seq) as f64;
    let traffic = 4.0 * p + activation_bytes as f64;
    flops / traffic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_batch_when_weight_bound() {
        // With negligible activations, AI is linear in tokens.
        let a = arithmetic_intensity(1_000_000, 1, 1024, 0);
        let b = arithmetic_intensity(1_000_000, 2, 1024, 0);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weight_bound_limit_is_1_5_tokens() {
        // activation_bytes = 0 → AI = 1.5 · B · S.
        let ai = arithmetic_intensity(123, 4, 128, 0);
        assert!((ai - 1.5 * (4.0 * 128.0)).abs() < 1e-9);
    }

    #[test]
    fn activations_reduce_intensity() {
        let lean = arithmetic_intensity(1_000_000, 8, 512, 0);
        let heavy = arithmetic_intensity(1_000_000, 8, 512, 1 << 30);
        assert!(heavy < lean);
    }
}
