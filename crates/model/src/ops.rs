//! Operator catalogue: the exact operator sequence of one LLM training step.
//!
//! DABench-LLM treats a training step as a dataflow graph whose nodes are
//! operators. This module enumerates those operators for a decoder-only
//! transformer — forward and backward — with exact FLOP, parameter and
//! activation-element accounting. Platform models consume this list to
//! build sections (RDU), kernels (WSE) or pipeline stages (IPU).
//!
//! All sizes here are in *elements*; byte conversions happen at the
//! workload level where the numeric precision is known.

use crate::config::{Activation, ModelConfig, Normalization, PositionalEncoding};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse operator class, used by partitioners and fusion rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Token (+ positional) embedding lookup.
    Embedding,
    /// LayerNorm or RMSNorm.
    Norm,
    /// Fused Q/K/V projection GEMM.
    QkvProj,
    /// Rotary position embedding application.
    Rope,
    /// Attention score GEMM (`Q Kᵀ`).
    AttnScores,
    /// Softmax over attention scores.
    Softmax,
    /// Attention context GEMM (`P V`).
    AttnContext,
    /// Attention output projection GEMM.
    OutProj,
    /// MLP up-projection GEMM.
    MlpUp,
    /// MLP gate GEMM (SwiGLU only).
    MlpGate,
    /// Elementwise activation (GELU / SiLU·gate).
    ActFn,
    /// MLP down-projection GEMM.
    MlpDown,
    /// Residual addition.
    ResidualAdd,
    /// LM head GEMM onto the vocabulary.
    LmHead,
    /// Softmax + cross-entropy loss.
    Loss,
    /// Optimizer parameter update.
    OptimizerStep,
}

impl OpClass {
    /// Whether this operator is a dense matrix multiplication.
    #[must_use]
    pub const fn is_matmul(self) -> bool {
        matches!(
            self,
            OpClass::QkvProj
                | OpClass::AttnScores
                | OpClass::AttnContext
                | OpClass::OutProj
                | OpClass::MlpUp
                | OpClass::MlpGate
                | OpClass::MlpDown
                | OpClass::LmHead
        )
    }

    /// Whether this operator belongs to the attention sub-block.
    #[must_use]
    pub const fn is_attention(self) -> bool {
        matches!(
            self,
            OpClass::QkvProj
                | OpClass::Rope
                | OpClass::AttnScores
                | OpClass::Softmax
                | OpClass::AttnContext
                | OpClass::OutProj
        )
    }

    /// Short stable identifier used in reports.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            OpClass::Embedding => "embedding",
            OpClass::Norm => "norm",
            OpClass::QkvProj => "qkv_proj",
            OpClass::Rope => "rope",
            OpClass::AttnScores => "attn_scores",
            OpClass::Softmax => "softmax",
            OpClass::AttnContext => "attn_context",
            OpClass::OutProj => "out_proj",
            OpClass::MlpUp => "mlp_up",
            OpClass::MlpGate => "mlp_gate",
            OpClass::ActFn => "act_fn",
            OpClass::MlpDown => "mlp_down",
            OpClass::ResidualAdd => "residual_add",
            OpClass::LmHead => "lm_head",
            OpClass::Loss => "loss",
            OpClass::OptimizerStep => "optimizer_step",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Training phase an operator belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass (activation and weight gradients).
    Backward,
    /// Weight update.
    Update,
}

/// One operator instance of a training step.
///
/// `flops` already includes batch and sequence dimensions; `in_elems` /
/// `out_elems` are activation tensor sizes in elements; `params` counts the
/// weights owned by the operator (zero for elementwise ops).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Unique name within the step, e.g. `"l3.attn_scores.fwd"`.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Forward / backward / update phase.
    pub phase: Phase,
    /// Decoder layer index, `None` for embedding / head / loss / update.
    pub layer: Option<u64>,
    /// Floating-point operations for the whole step (batch included).
    pub flops: f64,
    /// Weight parameters owned by this operator.
    pub params: u64,
    /// Activation input elements consumed.
    pub in_elems: u64,
    /// Activation output elements produced.
    pub out_elems: u64,
}

impl Op {
    /// Whether the op carries weights.
    #[must_use]
    pub fn has_params(&self) -> bool {
        self.params > 0
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{:.3e} FLOPs]", self.name, self.flops)
    }
}

/// Numeric cost fields of one operator — everything about an op except its
/// identity. Separated from [`Op`] so incremental recompilation can rebuild
/// the costs of an existing graph topology without re-rendering any names.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// Floating-point operations for the whole step (batch included).
    pub flops: f64,
    /// Weight parameters owned by this operator.
    pub params: u64,
    /// Activation input elements consumed.
    pub in_elems: u64,
    /// Activation output elements produced.
    pub out_elems: u64,
}

/// One operator of a training step in *record* form: a static label plus
/// numeric costs, with the display name derivable on demand. This is the
/// allocation-free twin of [`Op`] — generating a step's records performs no
/// per-op `String` formatting, which is what makes interned graph
/// construction and cost-only repatching cheap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// Static label, e.g. `"qkv_proj"` or `"residual1"` (no layer prefix or
    /// phase suffix).
    pub label: &'static str,
    /// Operator class.
    pub class: OpClass,
    /// Forward / backward / update phase.
    pub phase: Phase,
    /// Decoder layer index, `None` for embedding / head / loss / update.
    pub layer: Option<u64>,
    /// Numeric costs.
    pub cost: OpCost,
}

impl OpRecord {
    /// Render the operator's unique step name (`"l3.qkv_proj.fwd"`,
    /// `"optimizer.upd"`) into `buf`, clearing it first. Byte-identical to
    /// the names [`training_step_ops`] has always produced.
    pub fn write_name(&self, buf: &mut String) {
        use std::fmt::Write;
        buf.clear();
        let suffix = match self.phase {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
            Phase::Update => "upd",
        };
        match self.layer {
            Some(l) => {
                let _ = write!(buf, "l{l}.{}.{suffix}", self.label);
            }
            None => {
                let _ = write!(buf, "{}.{suffix}", self.label);
            }
        }
    }

    /// The operator's unique step name as an owned `String`.
    #[must_use]
    pub fn name(&self) -> String {
        let mut buf = String::new();
        self.write_name(&mut buf);
        buf
    }
}

/// Dimension bundle threaded through the op builders.
#[derive(Debug, Clone, Copy)]
struct Dims {
    b: f64,
    s: f64,
    h: f64,
    heads: f64,
    kv: f64,
    f: f64,
    v: f64,
}

/// Enumerate the forward-pass operators of one decoder layer.
fn layer_forward_records(cfg: &ModelConfig, d: Dims, layer: u64) -> Vec<OpRecord> {
    let mut ops = Vec::new();
    let bs = d.b * d.s;
    let bsh = bs * d.h;
    let push_named = |ops: &mut Vec<OpRecord>,
                      label: &'static str,
                      class: OpClass,
                      flops: f64,
                      params: u64,
                      in_e: f64,
                      out_e: f64| {
        ops.push(OpRecord {
            label,
            class,
            phase: Phase::Forward,
            layer: Some(layer),
            cost: OpCost {
                flops,
                params,
                in_elems: in_e as u64,
                out_elems: out_e as u64,
            },
        });
    };
    macro_rules! push {
        ($class:expr, $flops:expr, $params:expr, $in:expr, $out:expr $(,)?) => {
            push_named(
                &mut ops,
                $class.as_str(),
                $class,
                $flops,
                $params,
                $in,
                $out,
            )
        };
        ($label:literal, $class:expr, $flops:expr, $params:expr, $in:expr, $out:expr $(,)?) => {
            push_named(&mut ops, $label, $class, $flops, $params, $in, $out)
        };
    }

    let norm_flops_per_elem = match cfg.normalization {
        Normalization::LayerNorm => 8.0,
        Normalization::RmsNorm => 4.0,
    };
    let norm_params = match cfg.normalization {
        Normalization::LayerNorm => 2 * cfg.hidden_size,
        Normalization::RmsNorm => cfg.hidden_size,
    };

    // Pre-attention norm.
    push!(
        "norm1",
        OpClass::Norm,
        norm_flops_per_elem * bsh,
        norm_params,
        bsh,
        bsh
    );

    // QKV projection: output width h + 2*kv.
    let qkv_out = d.h + 2.0 * d.kv;
    let qkv_params = (d.h * qkv_out) as u64
        + if cfg.normalization == Normalization::LayerNorm {
            qkv_out as u64
        } else {
            0
        };
    push!(
        OpClass::QkvProj,
        2.0 * bs * d.h * qkv_out,
        qkv_params,
        bsh,
        bs * qkv_out,
    );

    if cfg.positional == PositionalEncoding::Rotary {
        let rot = bs * (d.h + d.kv);
        push!(OpClass::Rope, 6.0 * rot, 0, rot, rot);
    }

    // Attention scores Q·Kᵀ: per head S×S×head_dim → total 2·B·S²·h.
    let scores = d.b * d.heads * d.s * d.s;
    push!(
        OpClass::AttnScores,
        2.0 * d.b * d.s * d.s * d.h,
        0,
        bs * (d.h + d.kv),
        scores,
    );
    push!(OpClass::Softmax, 5.0 * scores, 0, scores, scores);
    push!(
        OpClass::AttnContext,
        2.0 * d.b * d.s * d.s * d.h,
        0,
        scores + bs * d.kv,
        bsh,
    );

    let out_params = (d.h * d.h) as u64
        + if cfg.normalization == Normalization::LayerNorm {
            d.h as u64
        } else {
            0
        };
    push!(OpClass::OutProj, 2.0 * bs * d.h * d.h, out_params, bsh, bsh,);
    push!("residual1", OpClass::ResidualAdd, bsh, 0, 2.0 * bsh, bsh);

    // Pre-MLP norm.
    push!(
        "norm2",
        OpClass::Norm,
        norm_flops_per_elem * bsh,
        norm_params,
        bsh,
        bsh
    );

    let bias = |w: f64| -> u64 {
        if cfg.normalization == Normalization::LayerNorm {
            w as u64
        } else {
            0
        }
    };
    match cfg.activation {
        Activation::Gelu => {
            push!(
                OpClass::MlpUp,
                2.0 * bs * d.h * d.f,
                (d.h * d.f) as u64 + bias(d.f),
                bsh,
                bs * d.f,
            );
            push!(OpClass::ActFn, 8.0 * bs * d.f, 0, bs * d.f, bs * d.f);
        }
        Activation::SwiGlu => {
            push!(
                OpClass::MlpUp,
                2.0 * bs * d.h * d.f,
                (d.h * d.f) as u64,
                bsh,
                bs * d.f,
            );
            push!(
                OpClass::MlpGate,
                2.0 * bs * d.h * d.f,
                (d.h * d.f) as u64,
                bsh,
                bs * d.f,
            );
            // SiLU on the gate plus the elementwise product.
            push!(OpClass::ActFn, 9.0 * bs * d.f, 0, 2.0 * bs * d.f, bs * d.f,);
        }
    }
    push!(
        OpClass::MlpDown,
        2.0 * bs * d.f * d.h,
        (d.f * d.h) as u64 + bias(d.h),
        bs * d.f,
        bsh,
    );
    push!("residual2", OpClass::ResidualAdd, bsh, 0, 2.0 * bsh, bsh);

    ops
}

/// The standard cost model: backward of an op costs twice its forward
/// FLOPs (one GEMM for the input gradient, one for the weight gradient),
/// which yields the paper's overall `6 · P · B · S` training-FLOP estimate.
const BACKWARD_FLOP_FACTOR: f64 = 2.0;

fn backward_of(r: &OpRecord) -> OpRecord {
    OpRecord {
        label: r.label,
        class: r.class,
        phase: Phase::Backward,
        layer: r.layer,
        cost: OpCost {
            flops: r.cost.flops * BACKWARD_FLOP_FACTOR,
            params: r.cost.params,
            // Gradient tensors mirror the forward activations, flowing the
            // opposite way.
            in_elems: r.cost.out_elems,
            out_elems: r.cost.in_elems,
        },
    }
}

/// Enumerate every operator of one full training step (forward, backward,
/// optimizer update) in data-dependency order.
///
/// The returned vector is ordered so that each operator appears after all
/// operators producing its inputs: embedding, layers `0..L` forward, LM head
/// and loss, then the backward mirror in reverse, then the update.
///
/// # Example
///
/// ```
/// use dabench_model::{ModelConfig, ops};
///
/// let step = ops::training_step_ops(&ModelConfig::gpt2_probe(768, 2), 4, 1024);
/// assert!(step.iter().any(|o| o.name == "l1.attn_scores.fwd"));
/// assert!(step.iter().any(|o| o.name == "l0.mlp_down.bwd"));
/// ```
#[must_use]
pub fn training_step_ops(cfg: &ModelConfig, batch: u64, seq: u64) -> Vec<Op> {
    step_records(cfg, batch, seq)
        .iter()
        .map(|r| Op {
            name: r.name(),
            class: r.class,
            phase: r.phase,
            layer: r.layer,
            flops: r.cost.flops,
            params: r.cost.params,
            in_elems: r.cost.in_elems,
            out_elems: r.cost.out_elems,
        })
        .collect()
}

/// Enumerate every operator of one training step in *record* form — the
/// same operators, order and costs as [`training_step_ops`] but without
/// rendering any names (no per-op allocations). Graph construction interns
/// names straight from these records; incremental recompilation re-derives
/// only the [`OpCost`]s via [`step_costs`].
#[must_use]
pub fn step_records(cfg: &ModelConfig, batch: u64, seq: u64) -> Vec<OpRecord> {
    let d = Dims {
        b: batch as f64,
        s: seq as f64,
        h: cfg.hidden_size as f64,
        heads: cfg.num_heads as f64,
        kv: cfg.kv_dim() as f64,
        f: cfg.ffn_hidden as f64,
        v: cfg.vocab_size as f64,
    };
    let bs = d.b * d.s;
    let bsh = bs * d.h;

    let mut forward = Vec::new();

    // Embedding: gather + positional add. No FLOPs to speak of; charge the
    // positional addition when learned.
    let pos_flops = if cfg.positional == PositionalEncoding::Learned {
        bsh
    } else {
        0.0
    };
    forward.push(OpRecord {
        label: "embedding",
        class: OpClass::Embedding,
        phase: Phase::Forward,
        layer: None,
        cost: OpCost {
            flops: pos_flops,
            params: cfg.embedding_parameter_count(),
            in_elems: bs as u64,
            out_elems: bsh as u64,
        },
    });

    for layer in 0..cfg.num_layers {
        forward.extend(layer_forward_records(cfg, d, layer));
    }

    // Final norm.
    let (fnf, fnp) = match cfg.normalization {
        Normalization::LayerNorm => (8.0 * bsh, 2 * cfg.hidden_size),
        Normalization::RmsNorm => (4.0 * bsh, cfg.hidden_size),
    };
    forward.push(OpRecord {
        label: "final_norm",
        class: OpClass::Norm,
        phase: Phase::Forward,
        layer: None,
        cost: OpCost {
            flops: fnf,
            params: fnp,
            in_elems: bsh as u64,
            out_elems: bsh as u64,
        },
    });

    // LM head. Tied embeddings share parameters; the GEMM cost is identical.
    forward.push(OpRecord {
        label: "lm_head",
        class: OpClass::LmHead,
        phase: Phase::Forward,
        layer: None,
        cost: OpCost {
            flops: 2.0 * bs * d.h * d.v,
            params: cfg.lm_head_parameter_count(),
            in_elems: bsh as u64,
            out_elems: (bs * d.v) as u64,
        },
    });

    forward.push(OpRecord {
        label: "loss",
        class: OpClass::Loss,
        phase: Phase::Forward,
        layer: None,
        cost: OpCost {
            flops: 5.0 * bs * d.v,
            params: 0,
            in_elems: (bs * d.v) as u64,
            out_elems: bs as u64,
        },
    });

    let mut ops = forward.clone();
    ops.extend(forward.iter().rev().map(backward_of));

    let total_params = cfg.parameter_count();
    ops.push(OpRecord {
        label: "optimizer",
        class: OpClass::OptimizerStep,
        phase: Phase::Update,
        layer: None,
        cost: OpCost {
            // Adam: ~10 FLOPs per parameter.
            flops: 10.0 * total_params as f64,
            params: 0,
            in_elems: total_params,
            out_elems: total_params,
        },
    });

    ops
}

/// The [`OpCost`]s of one training step, aligned index-for-index with
/// [`step_records`] and [`training_step_ops`]. This is the cheap pass the
/// incremental compile cache uses to repatch an existing graph topology
/// when only workload dimensions (hidden size, batch, sequence) changed.
#[must_use]
pub fn step_costs(cfg: &ModelConfig, batch: u64, seq: u64) -> Vec<OpCost> {
    step_records(cfg, batch, seq)
        .into_iter()
        .map(|r| r.cost)
        .collect()
}

/// Sum of FLOPs over `ops` restricted to a phase.
#[must_use]
pub fn phase_flops(ops: &[Op], phase: Phase) -> f64 {
    ops.iter()
        .filter(|o| o.phase == phase)
        .map(|o| o.flops)
        .sum()
}

/// Total FLOPs of a training step.
#[must_use]
pub fn total_flops(ops: &[Op]) -> f64 {
    ops.iter().map(|o| o.flops).sum()
}

/// Sum of stored forward activations in elements — what must be kept live
/// for the backward pass.
#[must_use]
pub fn stored_activation_elems(ops: &[Op]) -> u64 {
    ops.iter()
        .filter(|o| o.phase == Phase::Forward)
        .map(|o| o.out_elems)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    fn step() -> Vec<Op> {
        training_step_ops(&ModelConfig::gpt2_probe(768, 4), 8, 1024)
    }

    #[test]
    fn backward_is_twice_forward() {
        let ops = step();
        let fwd = phase_flops(&ops, Phase::Forward);
        let bwd = phase_flops(&ops, Phase::Backward);
        assert!((bwd / fwd - BACKWARD_FLOP_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn matches_six_p_b_s_convention() {
        // For long-enough sequences relative to hidden size the attention
        // quadratic term matters, so compare against 6*P*B*S with slack.
        let cfg = ModelConfig::gpt2_probe(768, 24);
        let ops = training_step_ops(&cfg, 4, 1024);
        let exact = total_flops(&ops);
        let approx = 6.0 * cfg.parameter_count() as f64 * (4 * 1024) as f64;
        let ratio = exact / approx;
        assert!((0.7..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn op_count_scales_with_layers() {
        let a = training_step_ops(&ModelConfig::gpt2_probe(768, 2), 1, 128).len();
        let b = training_step_ops(&ModelConfig::gpt2_probe(768, 4), 1, 128).len();
        assert!(b > a);
        // Each extra GPT-2 layer adds 12 forward ops and 12 backward ops.
        assert_eq!(b - a, 2 * 2 * 12);
    }

    #[test]
    fn swiglu_has_gate_ops() {
        let ops = training_step_ops(&ModelConfig::llama2_probe(4096, 2), 1, 512);
        assert!(ops.iter().any(|o| o.class == OpClass::MlpGate));
        assert!(ops.iter().any(|o| o.class == OpClass::Rope));
    }

    #[test]
    fn gpt2_has_no_rope_or_gate() {
        let ops = step();
        assert!(!ops.iter().any(|o| o.class == OpClass::MlpGate));
        assert!(!ops.iter().any(|o| o.class == OpClass::Rope));
    }

    #[test]
    fn per_layer_params_sum_to_model_params() {
        let cfg = ModelConfig::gpt2_probe(768, 6);
        let ops = training_step_ops(&cfg, 1, 64);
        let fwd_params: u64 = ops
            .iter()
            .filter(|o| o.phase == Phase::Forward)
            .map(|o| o.params)
            .sum();
        assert_eq!(fwd_params, cfg.parameter_count());
    }

    #[test]
    fn backward_mirrors_tensor_shapes() {
        let ops = step();
        let fwd = ops.iter().find(|o| o.name == "l0.mlp_up.fwd").unwrap();
        let bwd = ops.iter().find(|o| o.name == "l0.mlp_up.bwd").unwrap();
        assert_eq!(fwd.out_elems, bwd.in_elems);
        assert_eq!(fwd.in_elems, bwd.out_elems);
    }

    #[test]
    fn forward_flops_dominated_by_matmuls() {
        let ops = step();
        let total: f64 = phase_flops(&ops, Phase::Forward);
        let matmul: f64 = ops
            .iter()
            .filter(|o| o.phase == Phase::Forward && o.class.is_matmul())
            .map(|o| o.flops)
            .sum();
        assert!(matmul / total > 0.9);
    }

    #[test]
    fn stored_activations_scale_with_batch() {
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let a = stored_activation_elems(&training_step_ops(&cfg, 1, 256));
        let b = stored_activation_elems(&training_step_ops(&cfg, 2, 256));
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn names_are_unique() {
        let ops = step();
        let mut names: Vec<_> = ops.iter().map(|o| o.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ops.len());
    }

    #[test]
    fn records_align_with_ops() {
        // step_records is the single source behind training_step_ops and
        // step_costs; the three views must agree index-for-index.
        for cfg in [
            ModelConfig::gpt2_probe(768, 3),
            ModelConfig::llama2_probe(1024, 2),
        ] {
            let ops = training_step_ops(&cfg, 4, 256);
            let records = step_records(&cfg, 4, 256);
            let costs = step_costs(&cfg, 4, 256);
            assert_eq!(ops.len(), records.len());
            assert_eq!(ops.len(), costs.len());
            let mut buf = String::new();
            for ((op, r), c) in ops.iter().zip(&records).zip(&costs) {
                r.write_name(&mut buf);
                assert_eq!(op.name, buf);
                assert_eq!(op.class, r.class);
                assert_eq!(op.phase, r.phase);
                assert_eq!(op.layer, r.layer);
                assert_eq!(op.flops.to_bits(), c.flops.to_bits(), "{}", op.name);
                assert_eq!(op.params, c.params);
                assert_eq!(op.in_elems, c.in_elems);
                assert_eq!(op.out_elems, c.out_elems);
            }
        }
    }

    #[test]
    fn attention_classification() {
        assert!(OpClass::Softmax.is_attention());
        assert!(!OpClass::MlpUp.is_attention());
        assert!(OpClass::LmHead.is_matmul());
        assert!(!OpClass::Loss.is_matmul());
    }
}
