//! Property-based tests of the RDU partitioners and schedule over random
//! workload configurations.

use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{
    execute_sections, partition, traffic_report, CompilationMode, RduCompilerParams, RduSpec,
};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = CompilationMode> {
    prop_oneof![
        Just(CompilationMode::O0),
        Just(CompilationMode::O1),
        Just(CompilationMode::O3),
    ]
}

fn workload(hs_mult: u64, layers: u64, batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(64 * hs_mult, layers),
        batch,
        512,
        Precision::Fp16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every mode conserves the workload's FLOPs across its sections.
    #[test]
    fn partitioners_conserve_flops(
        hs_mult in 4u64..20,
        layers in 1u64..24,
        batch in 1u64..16,
        mode in arb_mode(),
    ) {
        let w = workload(hs_mult, layers, batch);
        let sections = partition(&w, &RduSpec::sn30(), &RduCompilerParams::default(), mode);
        let total: f64 = sections.iter().map(|s| s.flops_per_step()).sum();
        let expect = w.training_flops_per_step();
        prop_assert!((total - expect).abs() / expect < 0.05, "{total} vs {expect}");
    }

    /// Section unit claims never exceed the hardware.
    #[test]
    fn sections_respect_hardware(
        hs_mult in 4u64..20,
        layers in 1u64..24,
        mode in arb_mode(),
    ) {
        let w = workload(hs_mult, layers, 4);
        for s in partition(&w, &RduSpec::sn30(), &RduCompilerParams::default(), mode) {
            prop_assert!(s.pcus <= 640, "{}", s.name);
            prop_assert!(s.pmus <= 640, "{}", s.name);
            prop_assert!(s.invocations >= 1, "{}", s.name);
        }
    }

    /// The executor's step time is positive, finite, and decomposes into
    /// the per-section runtimes.
    #[test]
    fn schedule_times_decompose(
        hs_mult in 4u64..16,
        layers in 1u64..16,
        batch in 1u64..16,
        mode in arb_mode(),
    ) {
        let w = workload(hs_mult, layers, batch);
        let spec = RduSpec::sn30();
        let params = RduCompilerParams::default();
        let sections = partition(&w, &spec, &params, mode);
        let e = execute_sections(&sections, &w, &spec, &params);
        prop_assert!(e.step_time_s.is_finite() && e.step_time_s > 0.0);
        let sum: f64 = e.timings.iter().map(|t| t.runtime_s).sum();
        prop_assert!((sum - e.step_time_s).abs() / e.step_time_s < 1e-9);
        prop_assert!((0.0..=1.0).contains(&e.memory_bound_fraction));
    }

    /// O0 always produces at least as much DDR traffic as O1 and O3 on the
    /// same workload (per-operator spill is the worst case).
    #[test]
    fn o0_traffic_dominates(
        hs_mult in 4u64..16,
        layers in 2u64..16,
        batch in 1u64..8,
    ) {
        let w = workload(hs_mult, layers, batch);
        let spec = RduSpec::sn30();
        let params = RduCompilerParams::default();
        let traffic = |mode| {
            traffic_report(&partition(&w, &spec, &params, mode)).total_bytes()
        };
        let o0 = traffic(CompilationMode::O0);
        prop_assert!(o0 >= traffic(CompilationMode::O1));
        prop_assert!(o0 >= traffic(CompilationMode::O3));
    }

    /// Throughput is monotone non-decreasing in batch size for O3.
    #[test]
    fn o3_throughput_monotone_in_batch(
        hs_mult in 4u64..16,
        layers in 1u64..12,
        batch in 1u64..16,
    ) {
        let spec = RduSpec::sn30();
        let params = RduCompilerParams::default();
        let tput = |b: u64| {
            let w = workload(hs_mult, layers, b);
            let sections = partition(&w, &spec, &params, CompilationMode::O3);
            execute_sections(&sections, &w, &spec, &params).throughput_tokens_per_s
        };
        prop_assert!(tput(2 * batch) >= tput(batch) * 0.999);
    }
}
