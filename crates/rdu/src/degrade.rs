//! Fault remapping: re-partitioning sections over surviving PCU/PMU tiles.
//!
//! The RDU's sectioned execution makes remapping comparatively cheap: a
//! failed tile (or a fraction of the PCU/PMU population) shrinks the fabric
//! the partitioner may target, so SambaFlow re-compiles every section
//! against the surviving unit counts. DDR-link degradation is the harsher
//! fault — the chip is memory-bound in the paper's roofline, so lost DDR
//! bandwidth translates almost directly into lost throughput.

use crate::chip::RduSpec;
use crate::Rdu;
use dabench_core::{
    Degradable, DegradedProfile, FaultKind, FaultSet, Platform, PlatformError, RecoveryCost,
};
use dabench_model::TrainingWorkload;
use dabench_sim::{CheckpointModel, RetryPolicy};

/// Coarse wall-clock cost of re-compiling one section, seconds.
const RECOMPILE_S_PER_SECTION: f64 = 8.0;

/// Build the surviving hardware description under `faults`.
///
/// Tile faults remove whole PCU+PMU tiles; unit faults thin the
/// populations inside the remaining tiles; link faults scale the DDR and
/// intra-node bandwidths.
///
/// # Errors
///
/// [`PlatformError::DeviceFault`] when no tiles, PCUs or PMUs survive.
pub fn degraded_spec(spec: &RduSpec, faults: &FaultSet) -> Result<RduSpec, PlatformError> {
    let tile_loss = faults.dead_unit_fraction("tile");
    let pcu_loss = faults.dead_unit_fraction("pcu");
    let pmu_loss = faults.dead_unit_fraction("pmu");
    let link = faults.link_retained_fraction();

    let tiles = ((spec.tiles as f64) * (1.0 - tile_loss)).floor() as u64;
    let pcus_per_tile = ((spec.pcus_per_tile as f64) * (1.0 - pcu_loss)).floor() as u64;
    let pmus_per_tile = ((spec.pmus_per_tile as f64) * (1.0 - pmu_loss)).floor() as u64;
    if tiles == 0 || pcus_per_tile == 0 || pmus_per_tile == 0 {
        return Err(PlatformError::DeviceFault {
            unit: "tile".to_owned(),
            detail: format!(
                "no usable fabric left: {tiles} tiles x {pcus_per_tile} PCUs x \
                 {pmus_per_tile} PMUs survive"
            ),
        });
    }

    let mut out = spec.clone();
    out.tiles = tiles;
    out.pcus_per_tile = pcus_per_tile;
    out.pmus_per_tile = pmus_per_tile;
    out.ddr_bw_bytes_per_s *= link;
    out.intra_node_bw_bytes_per_s *= link;
    Ok(out)
}

impl Degradable for Rdu {
    fn fault_kind(&self) -> FaultKind {
        FaultKind::TiledFabric
    }

    fn degrade(
        &self,
        workload: &TrainingWorkload,
        faults: &FaultSet,
    ) -> Result<DegradedProfile, PlatformError> {
        let healthy = self.profile(workload)?;
        if faults.is_empty() {
            return Ok(DegradedProfile {
                degraded: healthy.clone(),
                healthy,
                recovery_cost: RecoveryCost::default(),
            });
        }

        let spec = degraded_spec(self.rdu_spec(), faults)?;
        // The section ceiling can never exceed the surviving fabric.
        let mut params = self.compiler_params().clone();
        params.max_pcus_per_section = params.max_pcus_per_section.min(spec.pcu_count());
        let degraded = Rdu::new(spec, params, self.mode()).profile(workload)?;

        let policy = RetryPolicy::default();
        let transient_penalty: f64 = faults
            .transient_stalls()
            .iter()
            .map(|&(_, stall)| policy.retry_penalty_s(stall, 1))
            .sum();
        let recovery_cost = RecoveryCost {
            remap_time_s: if faults.has_permanent() {
                degraded.sections.len() as f64 * RECOMPILE_S_PER_SECTION
            } else {
                0.0
            },
            lost_work_s: transient_penalty
                + if faults.has_permanent() {
                    CheckpointModel::default().expected_lost_work_s()
                } else {
                    0.0
                },
        };
        Ok(DegradedProfile {
            healthy,
            degraded,
            recovery_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompilationMode;
    use dabench_core::Fault;
    use dabench_model::{ModelConfig, Precision};

    fn w() -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Bf16)
    }

    fn units(kind: &str, fraction: f64) -> Fault {
        Fault::DeadUnits {
            kind: kind.to_owned(),
            fraction,
        }
    }

    #[test]
    fn lost_tile_degrades_throughput() {
        let rdu = Rdu::with_mode(CompilationMode::O1);
        let faults = FaultSet::new(vec![units("tile", 0.25)]);
        let d = rdu.degrade(&w(), &faults).unwrap();
        assert!(d.degraded.throughput_tokens_per_s <= d.healthy.throughput_tokens_per_s);
        assert!(d.degraded.throughput_tokens_per_s > 0.0);
        assert!(d.recovery_cost.remap_time_s > 0.0);
    }

    #[test]
    fn ddr_link_degradation_hits_memory_bound_chip_hard() {
        let rdu = Rdu::with_mode(CompilationMode::O3);
        let faults = FaultSet::new(vec![Fault::LinkDegraded {
            retained_fraction: 0.5,
        }]);
        let d = rdu.degrade(&w(), &faults).unwrap();
        let retention = d.throughput_retention();
        // Memory-bound sections roughly track the DDR bandwidth cut.
        assert!(retention < 0.85, "{retention}");
    }

    #[test]
    fn pcu_fraction_thins_sections() {
        let rdu = Rdu::with_mode(CompilationMode::O1);
        let faults = FaultSet::new(vec![units("pcu", 0.3)]);
        let d = rdu.degrade(&w(), &faults).unwrap();
        let healthy_max = d
            .healthy
            .sections
            .iter()
            .flat_map(|s| s.unit_usage.iter())
            .filter(|(k, _, _)| k == "pcu")
            .map(|&(_, used, _)| used)
            .max()
            .unwrap();
        let degraded_max = d
            .degraded
            .sections
            .iter()
            .flat_map(|s| s.unit_usage.iter())
            .filter(|(k, _, _)| k == "pcu")
            .map(|&(_, used, _)| used)
            .max()
            .unwrap();
        assert!(degraded_max <= healthy_max);
        assert!(degraded_max <= degraded_spec(rdu.rdu_spec(), &faults).unwrap().pcu_count());
    }

    #[test]
    fn total_fabric_loss_is_a_device_fault() {
        let rdu = Rdu::default();
        let faults = FaultSet::new(vec![units("tile", 1.0)]);
        assert!(matches!(
            rdu.degrade(&w(), &faults),
            Err(PlatformError::DeviceFault { .. })
        ));
    }

    #[test]
    fn empty_fault_set_is_identity() {
        let rdu = Rdu::default();
        let d = rdu.degrade(&w(), &FaultSet::default()).unwrap();
        assert_eq!(d.healthy, d.degraded);
    }
}
