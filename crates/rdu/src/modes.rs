//! Section partitioners for the three SambaFlow compilation modes
//! (Sec. III-B and Fig. 4 of the paper).

use crate::chip::{RduCompilerParams, RduSpec};
use crate::section::{assign_units, Section};
use crate::sharding::shard_lm_head;
use dabench_core::compile::training_graph;
use dabench_graph::{DataflowGraph, NodeRef};
use dabench_model::ops::{OpClass, Phase};
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SambaFlow graph compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilationMode {
    /// Operator mode: every operator class is its own section, invoked
    /// once per decoder layer.
    O0,
    /// Module mode: operators fused into modules before sectioning; the
    /// LM head is matrix-sharded above the capacity threshold.
    O1,
    /// Full-graph mode: decoder-by-decoder sections whose boundaries move
    /// with the hidden size (Table II(a)).
    O3,
}

impl CompilationMode {
    /// Lowercase mode label, e.g. `"o3"`.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            CompilationMode::O0 => "o0",
            CompilationMode::O1 => "o1",
            CompilationMode::O3 => "o3",
        }
    }
}

impl fmt::Display for CompilationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Partition a workload's training step into sections under `mode`.
///
/// # Example
///
/// ```
/// use dabench_model::{ModelConfig, Precision, TrainingWorkload};
/// use dabench_rdu::{partition, CompilationMode, RduCompilerParams, RduSpec};
///
/// let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Bf16);
/// let o0 = partition(&w, &RduSpec::sn30(), &RduCompilerParams::default(), CompilationMode::O0);
/// let o1 = partition(&w, &RduSpec::sn30(), &RduCompilerParams::default(), CompilationMode::O1);
/// // Fusion means fewer sections.
/// assert!(o1.len() < o0.len());
/// ```
#[must_use]
pub fn partition(
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
    mode: CompilationMode,
) -> Vec<Section> {
    use dabench_core::obs;
    obs::span(
        obs::Phase::Partition,
        &format!("rdu.partition.{mode}"),
        || {
            let sections = match mode {
                CompilationMode::O0 => partition_o0(workload, spec, params),
                CompilationMode::O1 => partition_o1(workload, spec, params),
                CompilationMode::O3 => partition_o3(workload, spec, params),
            };
            obs::counter("rdu.sections", sections.len() as f64);
            sections
        },
    )
}

fn elem_bytes(w: &TrainingWorkload) -> u64 {
    w.precision().bytes_per_element()
}

/// The ops of decoder layer 0, the per-layer template (all layers are
/// identical). Node order equals the op-catalogue order, so downstream
/// float accumulations stay bitwise identical to the legacy `step_ops()`
/// walks.
fn layer_template(g: &DataflowGraph) -> Vec<NodeRef<'_>> {
    g.iter()
        .map(|(_, op)| op)
        .filter(|o| o.layer() == Some(0))
        .collect()
}

fn non_layer_ops(g: &DataflowGraph) -> Vec<NodeRef<'_>> {
    g.iter()
        .map(|(_, op)| op)
        .filter(|o| o.layer().is_none())
        .collect()
}

/// Whether an op's tensors are quadratic attention internals that fused
/// (O1/O3) sections keep tiled on chip and recompute for backward —
/// spilling B·heads·S² score matrices to DDR only happens in O0, where
/// every operator is its own section.
fn is_attention_internal(class: OpClass) -> bool {
    matches!(class, OpClass::AttnScores | OpClass::Softmax)
}

/// Forward-input activation bytes a backward op must re-read from DDR (the
/// stashed forward activations). With `tiled` set (O1/O3), attention
/// internals are recomputed on chip instead of re-read.
///
/// The graph's pre-linked forward twin replaces the legacy
/// `name.replace(".bwd", ".fwd")` linear scan with an O(1) lookup.
fn bwd_act_read_bytes(op: NodeRef<'_>, g: &DataflowGraph, eb: u64, tiled: bool) -> u64 {
    if op.phase() != Phase::Backward {
        return 0;
    }
    if tiled && matches!(op.class(), OpClass::Softmax | OpClass::AttnContext) {
        return 0;
    }
    g.forward_twin(op.id())
        .map_or(0, |f| g.op(f).in_elems() * eb)
}

/// A single-operator section (O0 style).
fn op_section(
    op: NodeRef<'_>,
    invocations: u64,
    g: &DataflowGraph,
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> Section {
    let eb = elem_bytes(workload);
    // A tied LM head owns no parameters, but still reads the shared
    // embedding matrix from DDR on every pass.
    let weight = if op.class() == OpClass::LmHead && op.params() == 0 {
        workload.model().vocab_size * workload.model().hidden_size * eb
    } else {
        op.params() * eb
    };
    let input = op.in_elems() * eb + bwd_act_read_bytes(op, g, eb, false);
    let output = op.out_elems() * eb;
    assign_units(
        &format!("op.{}", op.name()),
        &[(op.name(), op.flops())],
        invocations,
        weight,
        input,
        output,
        spec,
        params,
    )
}

fn optimizer_section(
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
    g: &DataflowGraph,
) -> Section {
    let opt = g
        .find("optimizer.upd")
        .map(|id| g.op(id))
        .expect("training step has an optimizer op");
    let p = workload.model().parameter_count();
    let eb = elem_bytes(workload);
    // Read weights+grads+two FP32 moments, write weights+moments.
    let traffic = p * (2 * eb + 16) + p * (eb + 16);
    assign_units(
        "optimizer",
        &[(opt.name(), opt.flops())],
        1,
        0,
        traffic / 2,
        traffic / 2,
        spec,
        params,
    )
}

// ---------------------------------------------------------------- O0 ----

fn partition_o0(
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> Vec<Section> {
    let graph = training_graph(workload);
    let layers = workload.model().num_layers;
    let mut sections = Vec::new();
    for op in non_layer_ops(&graph) {
        if op.class() == OpClass::OptimizerStep {
            continue;
        }
        sections.push(op_section(op, 1, &graph, workload, spec, params));
    }
    for op in layer_template(&graph) {
        let mut sec = op_section(op, layers, &graph, workload, spec, params);
        // O0 sections alternate per operator through each layer's program,
        // so every invocation pays a fresh fabric load.
        sec.reload_per_invocation = true;
        sections.push(sec);
    }
    sections.push(optimizer_section(workload, spec, params, &graph));
    sections
}

// ---------------------------------------------------------------- O1 ----

/// Fusion module labels: ops of one decoder layer grouped as SambaFlow's
/// fusion pass does (attention input / core / output, MLP input / output).
const O1_MODULES: &[(&str, &[&str])] = &[
    ("attn_in", &["norm1", "qkv_proj", "rope"]),
    ("attn_core", &["attn_scores", "softmax", "attn_context"]),
    ("attn_out", &["out_proj", "residual1"]),
    ("mlp_in", &["norm2", "mlp_up", "mlp_gate", "act_fn"]),
    ("mlp_out", &["mlp_down", "residual2"]),
];

fn module_section(
    label: &str,
    members: &[NodeRef<'_>],
    invocations: u64,
    g: &DataflowGraph,
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> Section {
    let eb = elem_bytes(workload);
    let weight: u64 = members.iter().map(|o| o.params() * eb).sum();
    let acts: u64 = members
        .iter()
        .map(|o| bwd_act_read_bytes(*o, g, eb, true))
        .sum();
    // Boundary tensors: the module's first input and last output cross the
    // section boundary; interior tensors stay in PMUs.
    let input = members.first().map_or(0, |o| o.in_elems() * eb) + acts;
    let output = members.last().map_or(0, |o| o.out_elems() * eb);
    let ops: Vec<(&str, f64)> = members.iter().map(|o| (o.name(), o.flops())).collect();
    assign_units(
        label,
        &ops,
        invocations,
        weight,
        input,
        output,
        spec,
        params,
    )
}

fn partition_o1(
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> Vec<Section> {
    let graph = training_graph(workload);
    let layers = workload.model().num_layers;
    let eb = elem_bytes(workload);
    let mut sections = Vec::new();

    for phase in [Phase::Forward, Phase::Backward] {
        let suffix = if phase == Phase::Forward {
            "fwd"
        } else {
            "bwd"
        };
        for (label, op_labels) in O1_MODULES {
            // Members resolve by exact interned name — an O(1) index probe
            // per label instead of the legacy template scan.
            let members: Vec<NodeRef<'_>> = op_labels
                .iter()
                .filter_map(|l| graph.find(&format!("l0.{l}.{suffix}")))
                .map(|id| graph.op(id))
                .collect();
            if members.is_empty() {
                continue;
            }
            sections.push(module_section(
                &format!("o1.{label}.{suffix}"),
                &members,
                layers,
                &graph,
                workload,
                spec,
                params,
            ));
        }
    }

    // Embedding and loss as their own modules.
    for op in non_layer_ops(&graph) {
        match op.class() {
            OpClass::Embedding | OpClass::Loss | OpClass::Norm => {
                sections.push(op_section(op, 1, &graph, workload, spec, params));
            }
            _ => {}
        }
    }

    // LM head: sharded above the capacity threshold (Table II(b)).
    let model = workload.model();
    let plan = shard_lm_head(model.hidden_size, model.vocab_size, eb, params);
    for phase in [Phase::Forward, Phase::Backward] {
        let suffix = if phase == Phase::Forward {
            "fwd"
        } else {
            "bwd"
        };
        let head = graph
            .find(if phase == Phase::Forward {
                "lm_head.fwd"
            } else {
                "lm_head.bwd"
            })
            .map(|id| graph.op(id))
            .expect("lm head present");
        let per_section_flops = head.flops() / plan.sections as f64;
        let head_bytes = model.hidden_size * model.vocab_size * eb;
        for s in 0..plan.sections {
            let mut sec = assign_units(
                &format!("o1.lm_head.{suffix}.shard{s}"),
                &[(head.name(), head.flops())],
                1,
                head_bytes / plan.sections,
                head.in_elems() * eb / plan.sections,
                head.out_elems() * eb / plan.sections,
                spec,
                params,
            );
            // Shard sections use the correlated allocation of Table II(b),
            // not the generic template; a degraded fabric still caps it.
            sec.pcus = plan.pcus_per_section.min(spec.pcu_count());
            sec.pmus = plan.pmus_per_section.min(spec.pmu_count());
            sec.flops_per_invocation = per_section_flops;
            for op_assign in &mut sec.ops {
                op_assign.flops = per_section_flops;
                op_assign.pcus = sec.pcus;
            }
            sections.push(sec);
        }
    }

    sections.push(optimizer_section(workload, spec, params, &graph));
    sections
}

// ---------------------------------------------------------------- O3 ----

/// Quantize a continuous sections-per-decoder ratio to the grid SambaFlow
/// exposes (Table II(a)).
fn quantize_ratio(value: f64, grid: &[f64]) -> f64 {
    *grid
        .iter()
        .min_by(|a, b| {
            (*a - value)
                .abs()
                .partial_cmp(&(*b - value).abs())
                .expect("finite grid")
        })
        .expect("non-empty grid")
}

/// Forward and backward sections-per-decoder ratios for a model (the
/// "Ratio" columns of Table II(a)).
#[must_use]
pub fn o3_ratios(workload: &TrainingWorkload, params: &RduCompilerParams) -> (f64, f64) {
    let eb = elem_bytes(workload);
    let ws = workload.model().layer_parameter_count() as f64 * eb as f64;
    let fwd = quantize_ratio(
        (ws / params.o3_section_capacity_bytes).clamp(2.0 / 3.0, 3.0),
        &[2.0 / 3.0, 0.75, 1.0, 2.0, 3.0],
    );
    let bwd = quantize_ratio(
        (2.0 * ws / params.o3_section_capacity_bytes).clamp(11.0 / 6.0, 3.0),
        &[11.0 / 6.0, 2.0, 3.0],
    );
    (fwd, bwd)
}

fn o3_decoder_sections(
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
    g: &DataflowGraph,
    phase: Phase,
    ratio: f64,
) -> Vec<Section> {
    // O3's automatic partitioner places operators at a coarser PCU grain
    // than O1's fusion templates.
    let mut params = params.clone();
    params.pcu_quantum = params.o3_pcu_quantum;
    let params = &params;
    let eb = elem_bytes(workload);
    let layers = workload.model().num_layers;
    let count = ((layers as f64 * ratio).ceil() as u64).max(1);
    let template: Vec<NodeRef<'_>> = layer_template(g)
        .into_iter()
        .filter(|o| o.phase() == phase)
        .collect();
    let layer_flops: f64 = template.iter().map(|o| o.flops()).sum();
    let layer_weights: u64 = template.iter().map(|o| o.params() * eb).sum();
    // Attention internals are tiled on chip and recomputed for backward;
    // only linear-size activations round-trip through DDR.
    let stored_acts: u64 = layer_template(g)
        .iter()
        .filter(|o| o.phase() == Phase::Forward && !is_attention_internal(o.class()))
        .map(|o| o.out_elems() * eb)
        .sum();
    let boundary = template.first().map_or(0, |o| o.in_elems() * eb);
    let decoders_per_section = layers as f64 / count as f64;

    let suffix = if phase == Phase::Forward {
        "fwd"
    } else {
        "bwd"
    };
    let template_ops: Vec<(&str, f64)> = template.iter().map(|o| (o.name(), o.flops())).collect();
    // Unit sizing uses the one-decoder template even when a section holds a
    // fractional number of decoders (ratio ≠ 1): SambaFlow sizes sections
    // from the repeated decoder program, and the sqrt template's
    // sublinearity makes the correction second-order.
    (0..count)
        .map(|i| {
            let mut sec = assign_units(
                &format!("o3.decoders.{suffix}.{i}"),
                &template_ops,
                1,
                (layer_weights as f64 * decoders_per_section) as u64,
                boundary
                    + if phase == Phase::Backward {
                        (stored_acts as f64 * decoders_per_section) as u64
                    } else {
                        0
                    },
                boundary
                    + if phase == Phase::Forward {
                        (stored_acts as f64 * decoders_per_section) as u64
                    } else {
                        0
                    },
                spec,
                params,
            );
            sec.flops_per_invocation = layer_flops * decoders_per_section;
            sec
        })
        .collect()
}

fn partition_o3(
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> Vec<Section> {
    let graph = training_graph(workload);
    let (r_fwd, r_bwd) = o3_ratios(workload, params);
    let mut sections = Vec::new();

    for op in non_layer_ops(&graph) {
        if op.phase() == Phase::Forward || op.phase() == Phase::Backward {
            sections.push(op_section(op, 1, &graph, workload, spec, params));
        }
    }
    sections.extend(o3_decoder_sections(
        workload,
        spec,
        params,
        &graph,
        Phase::Forward,
        r_fwd,
    ));
    sections.extend(o3_decoder_sections(
        workload,
        spec,
        params,
        &graph,
        Phase::Backward,
        r_bwd,
    ));
    sections.push(optimizer_section(workload, spec, params, &graph));
    sections
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn w(h: u64, l: u64) -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(h, l), 8, 1024, Precision::Bf16)
    }

    fn parts(w: &TrainingWorkload, mode: CompilationMode) -> Vec<Section> {
        partition(w, &RduSpec::sn30(), &RduCompilerParams::default(), mode)
    }

    #[test]
    fn o0_section_count_is_layer_ops_plus_fixed() {
        let sections = parts(&w(768, 12), CompilationMode::O0);
        // 24 layer op sections (12 fwd + 12 bwd) + 8 non-layer + optimizer.
        assert_eq!(sections.len(), 24 + 8 + 1);
    }

    #[test]
    fn o0_layer_sections_invoked_per_layer() {
        let sections = parts(&w(768, 12), CompilationMode::O0);
        let qkv = sections
            .iter()
            .find(|s| s.name.contains("qkv_proj.fwd"))
            .unwrap();
        assert_eq!(qkv.invocations, 12);
    }

    #[test]
    fn o1_fuses_into_fewer_sections() {
        let o0 = parts(&w(768, 12), CompilationMode::O0).len();
        let o1 = parts(&w(768, 12), CompilationMode::O1).len();
        assert!(o1 < o0, "{o1} !< {o0}");
    }

    #[test]
    fn o1_module_sections_carry_module_weights() {
        let sections = parts(&w(768, 12), CompilationMode::O1);
        let mlp_in = sections.iter().find(|s| s.name == "o1.mlp_in.fwd").unwrap();
        // norm2 + mlp_up weights ≈ (2h + h·4h + 4h) × 2 B.
        let h = 768u64;
        let expect = (2 * h + h * 4 * h + 4 * h) * 2;
        assert_eq!(mlp_in.weight_bytes, expect);
    }

    #[test]
    fn o3_ratio_shape_matches_table2a() {
        let p = RduCompilerParams::default();
        let r = |h| o3_ratios(&w(h, 12), &p);
        assert!((r(480).0 - 2.0 / 3.0).abs() < 1e-9);
        assert!((r(768).0 - 2.0 / 3.0).abs() < 1e-9);
        assert!((r(1024).0 - 0.75).abs() < 1e-9);
        assert!((r(1280).0 - 1.0).abs() < 1e-9);
        assert!((r(480).1 - 11.0 / 6.0).abs() < 1e-9);
        assert!(r(1600).1 >= 2.0);
    }

    #[test]
    fn o3_fwd_section_count_follows_ratio() {
        let sections = parts(&w(768, 12), CompilationMode::O3);
        let fwd = sections
            .iter()
            .filter(|s| s.name.starts_with("o3.decoders.fwd"))
            .count();
        // 12 layers × 2/3 = 8 sections.
        assert_eq!(fwd, 8);
    }

    #[test]
    fn o3_backward_has_more_sections_than_forward() {
        let sections = parts(&w(1024, 12), CompilationMode::O3);
        let fwd = sections
            .iter()
            .filter(|s| s.name.starts_with("o3.decoders.fwd"))
            .count();
        let bwd = sections
            .iter()
            .filter(|s| s.name.starts_with("o3.decoders.bwd"))
            .count();
        assert!(bwd > fwd);
    }

    #[test]
    fn o1_shards_llama_head() {
        let llama =
            TrainingWorkload::new(ModelConfig::llama2_probe(4096, 4), 4, 4096, Precision::Bf16);
        let sections = parts(&llama, CompilationMode::O1);
        let shards = sections
            .iter()
            .filter(|s| s.name.contains("lm_head.fwd.shard"))
            .count();
        assert!(shards >= 2);
    }

    #[test]
    fn all_modes_conserve_flops() {
        let work = w(768, 6);
        let expect = work.training_flops_per_step();
        for mode in [
            CompilationMode::O0,
            CompilationMode::O1,
            CompilationMode::O3,
        ] {
            let total: f64 = parts(&work, mode).iter().map(Section::flops_per_step).sum();
            let err = (total - expect).abs() / expect;
            assert!(err < 0.05, "{mode}: {total} vs {expect}");
        }
    }

    #[test]
    fn o0_traffic_exceeds_o3_traffic() {
        // Per-operator sections spill every intermediate tensor; O3 only
        // spills decoder boundaries — the paper's memory-bound mechanism.
        let work = w(768, 12);
        let traffic = |mode| -> u64 {
            parts(&work, mode)
                .iter()
                .map(Section::ddr_bytes_per_step)
                .sum()
        };
        assert!(traffic(CompilationMode::O0) > traffic(CompilationMode::O3));
    }

    #[test]
    fn sections_respect_hardware_limits() {
        for mode in [
            CompilationMode::O0,
            CompilationMode::O1,
            CompilationMode::O3,
        ] {
            for s in parts(&w(1600, 24), mode) {
                assert!(s.pcus <= 640, "{}", s.name);
                assert!(s.pmus <= 640, "{}", s.name);
            }
        }
    }
}
