//! # dabench-rdu
//!
//! A performance model of the SambaNova DataScale SN30 Reconfigurable
//! Dataflow Unit (RDU), faithful to the execution strategy of Sec. III-B of
//! the DABench-LLM paper:
//!
//! - the training graph is partitioned into **sections** that load onto the
//!   chip one at a time; all parameters and intermediate data live in
//!   off-chip DDR (0.2 TB/s), so every section pays DDR traffic for its
//!   weights and its boundary tensors — the mechanism that makes the RDU
//!   memory-bound in the paper's roofline (Fig. 10);
//! - three compilation modes are implemented exactly as described:
//!   **O0** (one section per operator class, invoked once per layer),
//!   **O1** (operator-fusion modules, with LM-head matrix sharding per
//!   Table II(b)) and **O3** (decoder-by-decoder sections whose boundaries
//!   shift with hidden size, Table II(a));
//! - per-op PCU assignment inside a section follows a conservative
//!   √FLOPs template, which is what produces the paper's operator-level
//!   load-imbalance differences between O1 and O3 (Fig. 8);
//! - multi-chip scaling is tensor parallelism, cheap inside a node (two
//!   RDUs) and expensive across machines (Fig. 11(b), Table III).
//!
//! # Example
//!
//! ```
//! use dabench_core::tier1;
//! use dabench_model::{ModelConfig, Precision, TrainingWorkload};
//! use dabench_rdu::{CompilationMode, Rdu};
//!
//! let rdu = Rdu::with_mode(CompilationMode::O3);
//! let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Bf16);
//! let report = tier1::run(&rdu, &w).unwrap();
//! // The RDU never exceeds ~60% allocation (paper Fig. 7).
//! assert!(report.allocation_of("pcu").unwrap() < 0.68);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod degrade;
mod infer;
mod modes;
mod platform_impl;
mod schedule;
mod section;
mod sharding;
mod tp;
mod traffic;

pub use chip::{RduCompilerParams, RduSpec};
pub use degrade::degraded_spec;
pub use infer::{admission_probe, infer_model};
pub use modes::{o3_ratios, partition, CompilationMode};
pub use schedule::{execute_sections, RduExecution, SectionTiming};
pub use section::{OpAssignment, Section};
pub use sharding::{shard_lm_head, ShardPlan};
pub use tp::{tensor_parallel, TpPlan};
pub use traffic::{traffic_report, TrafficReport};

/// The SambaNova SN30 RDU platform model.
#[derive(Debug, Clone)]
pub struct Rdu {
    spec: RduSpec,
    params: RduCompilerParams,
    mode: CompilationMode,
    // Precomputed at construction so memo-cache lookups allocate nothing.
    cache_key: dabench_core::CacheKey,
}

pub(crate) fn cache_token_of(
    mode: CompilationMode,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> String {
    format!("rdu|{mode:?}|{spec:?}|{params:?}")
}

impl Rdu {
    /// Create an RDU model with explicit hardware/compiler parameters.
    #[must_use]
    pub fn new(spec: RduSpec, params: RduCompilerParams, mode: CompilationMode) -> Self {
        let cache_key = dabench_core::CacheKey::of_token(&cache_token_of(mode, &spec, &params));
        Self {
            spec,
            params,
            mode,
            cache_key,
        }
    }

    /// Default SN30 hardware with the given compilation mode.
    #[must_use]
    pub fn with_mode(mode: CompilationMode) -> Self {
        Self::new(RduSpec::sn30(), RduCompilerParams::default(), mode)
    }

    /// Hardware description in use.
    #[must_use]
    pub fn rdu_spec(&self) -> &RduSpec {
        &self.spec
    }

    /// Compiler parameters in use.
    #[must_use]
    pub fn compiler_params(&self) -> &RduCompilerParams {
        &self.params
    }

    /// Compilation mode in use.
    #[must_use]
    pub fn mode(&self) -> CompilationMode {
        self.mode
    }
}

impl Default for Rdu {
    /// O3 (full-graph mode), the mode SambaNova recommends for LLMs.
    fn default() -> Self {
        Self::with_mode(CompilationMode::O3)
    }
}
