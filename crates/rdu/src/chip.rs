//! SN30 hardware description and compiler tuning parameters.

use serde::{Deserialize, Serialize};

/// Static hardware description of one RDU (the SN30 node holds two).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RduSpec {
    /// Tiles per RDU.
    pub tiles: u64,
    /// Pattern Compute Units per tile.
    pub pcus_per_tile: u64,
    /// Pattern Memory Units per tile.
    pub pmus_per_tile: u64,
    /// Peak 16-bit FLOP/s per PCU.
    pub peak_flops_per_pcu: f64,
    /// On-chip scratchpad bytes per PMU.
    pub bytes_per_pmu: u64,
    /// Off-chip DDR capacity per RDU, bytes.
    pub ddr_capacity_bytes: u64,
    /// Off-chip DDR bandwidth per RDU, bytes/second (the paper's 0.2 TB/s).
    pub ddr_bw_bytes_per_s: f64,
    /// RDU-to-RDU link bandwidth inside one node, bytes/second.
    pub intra_node_bw_bytes_per_s: f64,
    /// Effective node-to-node allreduce goodput, bytes/second (blocking
    /// per-layer allreduces over the cluster interconnect are latency-
    /// dominated, far below line rate).
    pub inter_node_bw_bytes_per_s: f64,
    /// RDUs per SN30 node.
    pub rdus_per_node: u64,
}

impl RduSpec {
    /// The DataScale SN30 configuration.
    #[must_use]
    pub fn sn30() -> Self {
        Self {
            tiles: 4,
            pcus_per_tile: 160,
            pmus_per_tile: 160,
            // 640 PCUs × 434 GFLOP/s ≈ 278 TFLOP/s peak — consistent with
            // the paper's 18.2% peak efficiency at 50.6 TFLOPs.
            peak_flops_per_pcu: 4.34e11,
            bytes_per_pmu: 1 << 20, // 1 MiB scratchpad → 640 MB on chip
            ddr_capacity_bytes: 512 << 30,
            ddr_bw_bytes_per_s: 0.2e12,
            intra_node_bw_bytes_per_s: 400e9,
            inter_node_bw_bytes_per_s: 2.2e9,
            rdus_per_node: 2,
        }
    }

    /// PCUs per RDU.
    #[must_use]
    pub fn pcu_count(&self) -> u64 {
        self.tiles * self.pcus_per_tile
    }

    /// PMUs per RDU.
    #[must_use]
    pub fn pmu_count(&self) -> u64 {
        self.tiles * self.pmus_per_tile
    }

    /// Total on-chip PMU scratchpad, bytes.
    #[must_use]
    pub fn on_chip_bytes(&self) -> u64 {
        self.pmu_count() * self.bytes_per_pmu
    }

    /// Peak RDU throughput at 16-bit precision, TFLOP/s.
    #[must_use]
    pub fn peak_tflops(&self) -> f64 {
        self.pcu_count() as f64 * self.peak_flops_per_pcu / 1e12
    }
}

impl Default for RduSpec {
    fn default() -> Self {
        Self::sn30()
    }
}

/// Tuning constants of the (modelled) SambaFlow compiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RduCompilerParams {
    /// Conservative per-op PCU template: `pcus = sqrt(flops/invocation) /
    /// sqrt_flops_per_pcu`, clamped to the section budget.
    pub sqrt_flops_per_pcu: f64,
    /// Minimum PCUs any operator receives.
    pub min_pcus_per_op: u64,
    /// Ceiling on a single section's PCU claim — SambaFlow never maps a
    /// section onto the whole fabric (the paper's "significantly below the
    /// 640 hardware limit" observation).
    pub max_pcus_per_section: u64,
    /// PCU-group granularity of intra-section operator placement; O1's
    /// hand-fused modules place at this grain.
    pub pcu_quantum: u64,
    /// Coarser placement grain of O3's automatic whole-graph partitioner
    /// (the reason O1 balances markedly better in Fig. 8).
    pub o3_pcu_quantum: u64,
    /// Sustained fraction of PCU peak inside a mapped section.
    pub pcu_sustained_efficiency: f64,
    /// PMUs granted per byte of section working set (weights + boundary
    /// tiles), expressed as bytes-per-PMU before another PMU is added.
    pub working_bytes_per_pmu: f64,
    /// Minimum PMUs per section.
    pub min_pmus_per_section: u64,
    /// Fixed cost of loading a section onto the fabric, seconds.
    pub section_load_overhead_s: f64,
    /// Per-invocation trigger cost of an already-loaded section, seconds.
    pub invocation_overhead_s: f64,
    /// Pipeline depth per PCU: deeper (bigger) sections pay a longer
    /// one-off fill per load (drives O0/O1's falling allocation share
    /// with layer count, Fig. 7(a)).
    pub pipeline_depth_per_pcu: f64,
    /// Micro-tiles one invocation is streamed as; the fill costs
    /// `depth / microtiles` of one invocation's service time.
    pub microtiles_per_invocation: f64,
    /// O3: on-chip working-set capacity per forward section, bytes; the
    /// decoder-per-section ratio of Table II(a) derives from it.
    pub o3_section_capacity_bytes: f64,
    /// LM-head shard capacity for hidden sizes ≤ `shard_fine_threshold`,
    /// bytes (Table II(b)).
    pub shard_coarse_bytes: f64,
    /// LM-head shard capacity above the threshold, bytes.
    pub shard_fine_bytes: f64,
    /// Hidden size beyond which the sharder switches to fine shards.
    pub shard_fine_threshold: u64,
}

impl Default for RduCompilerParams {
    fn default() -> Self {
        Self {
            sqrt_flops_per_pcu: 3.0e3,
            min_pcus_per_op: 4,
            max_pcus_per_section: 520,
            pcu_quantum: 8,
            o3_pcu_quantum: 32,
            pcu_sustained_efficiency: 0.5,
            working_bytes_per_pmu: 1.5e6,
            min_pmus_per_section: 8,
            section_load_overhead_s: 1.0e-3,
            invocation_overhead_s: 1.0e-4,
            pipeline_depth_per_pcu: 0.05,
            microtiles_per_invocation: 32.0,
            o3_section_capacity_bytes: 33.0e6,
            shard_coarse_bytes: 24.0e6,
            shard_fine_bytes: 12.0e6,
            shard_fine_threshold: 4800,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sn30_matches_white_paper() {
        let s = RduSpec::sn30();
        assert_eq!(s.pcu_count(), 640);
        assert_eq!(s.pmu_count(), 640);
        // Peak consistent with the paper's efficiency figures.
        assert!((250.0..300.0).contains(&s.peak_tflops()));
        // The paper's 0.2 TB/s DDR bandwidth.
        assert!((s.ddr_bw_bytes_per_s - 0.2e12).abs() < 1e9);
    }

    #[test]
    fn cross_machine_links_are_slower() {
        let s = RduSpec::sn30();
        assert!(s.inter_node_bw_bytes_per_s < s.intra_node_bw_bytes_per_s / 4.0);
    }

    #[test]
    fn ddr_is_the_slow_tier() {
        let s = RduSpec::sn30();
        assert!(s.ddr_bw_bytes_per_s < s.intra_node_bw_bytes_per_s);
    }
}
