//! DDR-traffic breakdown of a section schedule.
//!
//! The RDU's memory-bound behaviour (Fig. 10(b)) is entirely a traffic
//! story; this module splits a schedule's per-step DDR bytes into the
//! categories a compiler engineer would optimize separately.

use crate::section::Section;
use serde::{Deserialize, Serialize};

/// Per-category DDR traffic of one training step, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Weight reads (per section invocation).
    pub weight_bytes: u64,
    /// Boundary/activation tensor reads.
    pub input_bytes: u64,
    /// Boundary/activation tensor writes.
    pub output_bytes: u64,
    /// Traffic of the optimizer section (master state round trip).
    pub optimizer_bytes: u64,
}

impl TrafficReport {
    /// Total bytes per step.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes + self.optimizer_bytes
    }

    /// Fraction of traffic attributable to activations (reads + writes).
    #[must_use]
    pub fn activation_fraction(&self) -> f64 {
        if self.total_bytes() == 0 {
            return 0.0;
        }
        (self.input_bytes + self.output_bytes) as f64 / self.total_bytes() as f64
    }
}

/// Break a schedule's per-step DDR traffic into categories.
///
/// # Example
///
/// ```
/// use dabench_model::{ModelConfig, Precision, TrainingWorkload};
/// use dabench_rdu::{partition, traffic_report, CompilationMode, RduCompilerParams, RduSpec};
///
/// let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Fp16);
/// let sections = partition(&w, &RduSpec::sn30(), &RduCompilerParams::default(), CompilationMode::O0);
/// let report = traffic_report(&sections);
/// // Per-operator sections make activations the dominant traffic class.
/// assert!(report.activation_fraction() > 0.5);
/// ```
#[must_use]
pub fn traffic_report(sections: &[Section]) -> TrafficReport {
    let mut r = TrafficReport::default();
    for s in sections {
        let inv = s.invocations;
        if s.name == "optimizer" {
            r.optimizer_bytes += s.ddr_bytes_per_step();
            continue;
        }
        r.weight_bytes += s.weight_bytes * inv;
        r.input_bytes += s.input_bytes * inv;
        r.output_bytes += s.output_bytes * inv;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{RduCompilerParams, RduSpec};
    use crate::modes::{partition, CompilationMode};
    use dabench_model::{ModelConfig, Precision, TrainingWorkload};

    fn report(mode: CompilationMode) -> TrafficReport {
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Fp16);
        let sections = partition(&w, &RduSpec::sn30(), &RduCompilerParams::default(), mode);
        traffic_report(&sections)
    }

    #[test]
    fn categories_sum_to_schedule_total() {
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 8, 1024, Precision::Fp16);
        let sections = partition(
            &w,
            &RduSpec::sn30(),
            &RduCompilerParams::default(),
            CompilationMode::O3,
        );
        let r = traffic_report(&sections);
        let direct: u64 = sections
            .iter()
            .map(crate::Section::ddr_bytes_per_step)
            .sum();
        assert_eq!(r.total_bytes(), direct);
    }

    #[test]
    fn fusion_cuts_activation_traffic_most() {
        let o0 = report(CompilationMode::O0);
        let o1 = report(CompilationMode::O1);
        // Weights are read either way; fusion removes boundary tensors.
        let act = |r: &TrafficReport| r.input_bytes + r.output_bytes;
        assert!(act(&o0) > 2 * act(&o1), "{} vs {}", act(&o0), act(&o1));
        let drop_w = o0.weight_bytes as f64 / o1.weight_bytes as f64;
        assert!((0.8..1.3).contains(&drop_w), "{drop_w}");
    }

    #[test]
    fn optimizer_traffic_is_isolated() {
        let r = report(CompilationMode::O3);
        assert!(r.optimizer_bytes > 0);
        // Optimizer state round trip ≈ params × (tens of bytes).
        let per_param =
            r.optimizer_bytes as f64 / ModelConfig::gpt2_probe(768, 12).parameter_count() as f64;
        assert!((10.0..60.0).contains(&per_param), "{per_param}");
    }
}
