//! Sequential section execution and timing.

use crate::chip::{RduCompilerParams, RduSpec};
use crate::section::Section;
use dabench_model::{Precision, TrainingWorkload};
use serde::{Deserialize, Serialize};

/// Relative PCU throughput of a precision flow.
///
/// `Bf16` models the vendor's conservative default (BF16 storage with
/// FP32-accumulating GEMMs); `Fp16`/`Cb16` model the tuned mixed-precision
/// flow at full 16-bit rate — together with the traffic factor below this
/// reproduces Table IV's 34% RDU mixed-precision gain.
fn precision_rate_factor(p: Precision) -> f64 {
    match p {
        Precision::Fp32 => 0.5,
        Precision::Bf16 => 0.72,
        // FP8 is a KV-storage format; compute still runs the 16-bit flow.
        Precision::Fp16 | Precision::Cb16 | Precision::Fp8 => 1.0,
    }
}

/// Extra DDR traffic multiplier of a precision flow.
///
/// On the RDU, [`Precision::Bf16`] models the vendor's default BF16 flow
/// that keeps FP32 master tensors in DDR (1.5× traffic on every transfer),
/// while [`Precision::Fp16`] models the tuned *mixed-precision* flow with
/// pure 16-bit DDR residency — the two columns of Table IV's RDU entry.
fn precision_traffic_factor(p: Precision) -> f64 {
    match p {
        Precision::Bf16 => 1.5,
        Precision::Fp32 | Precision::Fp16 | Precision::Cb16 | Precision::Fp8 => 1.0,
    }
}

/// Timing of one section over a whole training step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionTiming {
    /// Section name.
    pub name: String,
    /// Total runtime across all invocations (incl. load and fill), seconds.
    pub runtime_s: f64,
    /// Pure compute time per invocation, seconds.
    pub compute_time_s: f64,
    /// Pure DDR-transfer time per invocation, seconds.
    pub ddr_time_s: f64,
}

/// Outcome of executing a section schedule on one RDU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RduExecution {
    /// Per-section timing, aligned with the input sections.
    pub timings: Vec<SectionTiming>,
    /// Wall-clock time of one optimizer step, seconds.
    pub step_time_s: f64,
    /// Achieved compute throughput, TFLOP/s.
    pub achieved_tflops: f64,
    /// Training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Total DDR traffic per step, bytes.
    pub ddr_bytes_per_step: u64,
    /// Fraction of step time limited by DDR transfers.
    pub memory_bound_fraction: f64,
}

/// Execute `sections` sequentially for one step of `workload`.
///
/// Per invocation a section is limited by the slower of its compute and its
/// DDR traffic; per step it additionally pays its fabric-load overhead and
/// a pipeline fill proportional to its size (big sections amortize their
/// fill over more invocations — the mechanism behind Fig. 7(a)'s falling
/// O0/O1 allocation share with depth).
#[must_use]
pub fn execute_sections(
    sections: &[Section],
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> RduExecution {
    use dabench_core::obs;
    obs::span(obs::Phase::Execute, "rdu.execute", || {
        let e = execute_sections_inner(sections, workload, spec, params);
        obs::counter("rdu.step_time_s", e.step_time_s);
        obs::counter("rdu.ddr_bytes", e.ddr_bytes_per_step as f64);
        obs::counter("rdu.memory_bound_fraction", e.memory_bound_fraction);
        e
    })
}

fn execute_sections_inner(
    sections: &[Section],
    workload: &TrainingWorkload,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> RduExecution {
    let rate = precision_rate_factor(workload.precision());
    let traffic_mult = precision_traffic_factor(workload.precision());
    let mut timings = Vec::with_capacity(sections.len());
    let mut step_time = 0.0;
    let mut ddr_bytes_total = 0.0;
    let mut ddr_limited_time = 0.0;
    for s in sections {
        let compute = s.flops_per_invocation
            / (s.pcus as f64 * spec.peak_flops_per_pcu * params.pcu_sustained_efficiency * rate);
        let ddr_bytes = s.ddr_bytes_per_invocation() as f64 * traffic_mult;
        let ddr = ddr_bytes / spec.ddr_bw_bytes_per_s;
        let service = compute.max(ddr);
        // One-off pipeline fill per load: `depth` micro-tiles deep, each
        // micro-tile being 1/microtiles of an invocation.
        let depth = params.pipeline_depth_per_pcu * s.pcus as f64;
        let fill = depth * service / params.microtiles_per_invocation;
        let loads = if s.reload_per_invocation {
            s.invocations as f64
        } else {
            1.0
        };
        let runtime = loads * params.section_load_overhead_s
            + s.invocations as f64 * service
            + fill
            + s.invocations as f64 * params.invocation_overhead_s;
        step_time += runtime;
        ddr_bytes_total += ddr_bytes * s.invocations as f64;
        if ddr >= compute {
            ddr_limited_time += runtime;
        }
        timings.push(SectionTiming {
            name: s.name.clone(),
            runtime_s: runtime,
            compute_time_s: compute,
            ddr_time_s: ddr,
        });
    }
    let flops: f64 = sections.iter().map(Section::flops_per_step).sum();
    RduExecution {
        timings,
        step_time_s: step_time,
        achieved_tflops: flops / step_time / 1e12,
        throughput_tokens_per_s: workload.tokens_per_step() as f64 / step_time,
        ddr_bytes_per_step: ddr_bytes_total as u64,
        memory_bound_fraction: ddr_limited_time / step_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{partition, CompilationMode};
    use dabench_model::ModelConfig;

    fn run(mode: CompilationMode, h: u64, l: u64, b: u64) -> RduExecution {
        let spec = RduSpec::sn30();
        let params = RduCompilerParams::default();
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(h, l), b, 1024, Precision::Fp16);
        let sections = partition(&w, &spec, &params, mode);
        execute_sections(&sections, &w, &spec, &params)
    }

    #[test]
    fn o0_is_much_slower_than_o3() {
        let o0 = run(CompilationMode::O0, 768, 12, 8);
        let o3 = run(CompilationMode::O3, 768, 12, 8);
        assert!(o0.achieved_tflops < 0.5 * o3.achieved_tflops);
    }

    #[test]
    fn o3_tflops_in_paper_band() {
        // Paper Fig. 9: O1/O3 around 35-50 TFLOPs at scale.
        let e = run(CompilationMode::O3, 1600, 24, 8);
        assert!(
            (25.0..60.0).contains(&e.achieved_tflops),
            "{}",
            e.achieved_tflops
        );
    }

    #[test]
    fn o3_tflops_flat_in_layers() {
        let a = run(CompilationMode::O3, 768, 12, 8).achieved_tflops;
        let b = run(CompilationMode::O3, 768, 48, 8).achieved_tflops;
        let ratio = b / a;
        assert!((0.75..1.4).contains(&ratio), "{ratio}");
    }

    #[test]
    fn o3_tflops_rise_with_hidden_size() {
        let small = run(CompilationMode::O3, 480, 12, 8).achieved_tflops;
        let big = run(CompilationMode::O3, 1600, 12, 8).achieved_tflops;
        assert!(big > small, "{big} !> {small}");
    }

    #[test]
    fn rdu_is_memory_bound() {
        // Part of the schedule is DDR-limited even at small batch; the
        // paper's memory-bound classification itself comes from the Eq. 5
        // roofline, checked in platform_impl tests.
        let e = run(CompilationMode::O3, 768, 24, 8);
        assert!(e.memory_bound_fraction > 0.1, "{}", e.memory_bound_fraction);
    }

    #[test]
    fn batch_scaling_is_near_linear() {
        let t8 = run(CompilationMode::O3, 768, 12, 8).throughput_tokens_per_s;
        let t32 = run(CompilationMode::O3, 768, 12, 32).throughput_tokens_per_s;
        let scaling = t32 / t8;
        assert!(scaling > 1.35, "{scaling}");
    }

    #[test]
    fn mixed_precision_beats_bf16_by_a_third() {
        let spec = RduSpec::sn30();
        let params = RduCompilerParams::default();
        let mk = |p| TrainingWorkload::new(ModelConfig::gpt2_probe(1024, 12), 8, 1024, p);
        let bf = mk(Precision::Bf16);
        let mixed = mk(Precision::Fp16);
        let t_bf = execute_sections(
            &partition(&bf, &spec, &params, CompilationMode::O3),
            &bf,
            &spec,
            &params,
        )
        .throughput_tokens_per_s;
        let t_mixed = execute_sections(
            &partition(&mixed, &spec, &params, CompilationMode::O3),
            &mixed,
            &spec,
            &params,
        )
        .throughput_tokens_per_s;
        let gain = t_mixed / t_bf - 1.0;
        // Paper Table IV: +34.3%.
        assert!((0.15..0.55).contains(&gain), "{gain}");
    }

    #[test]
    fn step_time_accounts_all_sections() {
        let e = run(CompilationMode::O3, 768, 12, 8);
        let sum: f64 = e.timings.iter().map(|t| t.runtime_s).sum();
        assert!((sum - e.step_time_s).abs() / e.step_time_s < 1e-9);
    }
}
