//! Tensor parallelism across RDUs (Sec. VI-A.3b of the paper).

use crate::chip::{RduCompilerParams, RduSpec};
use crate::modes::{partition, CompilationMode};
use crate::schedule::execute_sections;
use crate::section::Section;
use dabench_core::PlatformError;
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};

/// Outcome of a tensor-parallel execution across `degree` RDUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpPlan {
    /// TP degree (number of RDUs).
    pub degree: u32,
    /// Aggregate training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Fraction of step time spent in allreduce communication.
    pub communication_fraction: f64,
    /// Runtime-weighted PCU allocation ratio per chip (incl. the idle
    /// fabric during communication phases).
    pub pcu_allocation: f64,
    /// Runtime-weighted PMU allocation ratio per chip.
    pub pmu_allocation: f64,
    /// Wall-clock step time, seconds.
    pub step_time_s: f64,
    /// Whether the configuration crosses machine boundaries.
    pub cross_machine: bool,
}

/// Shard each section's weights and compute over `degree` chips (Megatron
/// style); boundary activations stay replicated.
fn shard_sections(sections: &[Section], degree: u32) -> Vec<Section> {
    let d = f64::from(degree);
    sections
        .iter()
        .map(|s| {
            let mut out = s.clone();
            out.flops_per_invocation /= d;
            out.weight_bytes = (s.weight_bytes as f64 / d) as u64;
            for op in &mut out.ops {
                op.flops /= d;
            }
            out
        })
        .collect()
}

/// Execute `workload` tensor-parallel over `degree` RDUs under `mode`.
///
/// Within one SN30 node (two RDUs) the allreduce rides the fast RDU-Connect
/// link; beyond that it crosses machine links an order of magnitude slower,
/// which is the paper's observed 40% throughput cliff from TP2 to TP4.
///
/// # Errors
///
/// [`PlatformError::Unsupported`] when `degree` is zero or not a power of
/// two (the only layouts SambaFlow exposes).
pub fn tensor_parallel(
    spec: &RduSpec,
    params: &RduCompilerParams,
    mode: CompilationMode,
    workload: &TrainingWorkload,
    degree: u32,
) -> Result<TpPlan, PlatformError> {
    if degree == 0 || !degree.is_power_of_two() {
        return Err(PlatformError::Unsupported(format!(
            "TP degree must be a positive power of two, got {degree}"
        )));
    }

    let sections = partition(workload, spec, params, mode);
    let sharded = shard_sections(&sections, degree);
    let exec = execute_sections(&sharded, workload, spec, params);

    // Megatron-style TP: two allreduces per layer per pass (fwd + bwd), on
    // B×S×h activations, volume scaled by (d-1)/d.
    let model = workload.model();
    let d = f64::from(degree);
    let eb = workload.precision().bytes_per_element() as f64;
    let volume = 4.0
        * model.num_layers as f64
        * workload.tokens_per_step() as f64
        * model.hidden_size as f64
        * eb
        * (d - 1.0)
        / d;
    let cross_machine = u64::from(degree) > spec.rdus_per_node;
    let link_bw = if cross_machine {
        spec.inter_node_bw_bytes_per_s
    } else {
        spec.intra_node_bw_bytes_per_s
    };
    let comm_time = if degree == 1 { 0.0 } else { volume / link_bw };

    let step_time = exec.step_time_s + comm_time;
    let comm_fraction = comm_time / step_time;

    // Runtime-weighted allocation per chip: compute sections keep their
    // unit claims, the communication phase holds only the DMA fabric
    // (Fig. 11(b)'s allocation collapse under cross-machine TP).
    let total_units = spec.pcu_count() as f64;
    let compute_pcu: f64 = sharded
        .iter()
        .zip(&exec.timings)
        .map(|(s, t)| s.pcus as f64 / total_units * t.runtime_s)
        .sum::<f64>();
    let compute_pmu: f64 = sharded
        .iter()
        .zip(&exec.timings)
        .map(|(s, t)| s.pmus as f64 / spec.pmu_count() as f64 * t.runtime_s)
        .sum::<f64>();
    let comm_pcu = 64.0 / total_units * comm_time;
    let comm_pmu = 160.0 / spec.pmu_count() as f64 * comm_time;
    let pcu_allocation = (compute_pcu + comm_pcu) / step_time;
    let pmu_allocation = (compute_pmu + comm_pmu) / step_time;

    Ok(TpPlan {
        degree,
        throughput_tokens_per_s: workload.tokens_per_step() as f64 / step_time,
        communication_fraction: comm_fraction,
        pcu_allocation,
        pmu_allocation,
        step_time_s: step_time,
        cross_machine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn llama7b() -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::llama2_7b(), 8, 4096, Precision::Bf16)
    }

    fn tp(degree: u32) -> TpPlan {
        tensor_parallel(
            &RduSpec::sn30(),
            &RduCompilerParams::default(),
            CompilationMode::O1,
            &llama7b(),
            degree,
        )
        .unwrap()
    }

    #[test]
    fn tp2_to_tp4_cliff() {
        // Paper Table III: 1540 → 945 tokens/s (≈40% drop) crossing the
        // machine boundary.
        let t2 = tp(2);
        let t4 = tp(4);
        assert!(!t2.cross_machine);
        assert!(t4.cross_machine);
        let drop = 1.0 - t4.throughput_tokens_per_s / t2.throughput_tokens_per_s;
        assert!((0.25..0.55).contains(&drop), "{drop}");
    }

    #[test]
    fn tp4_to_tp8_minimal_drop() {
        // Paper: 945 → 918 tokens/s.
        let t4 = tp(4);
        let t8 = tp(8);
        let drop = 1.0 - t8.throughput_tokens_per_s / t4.throughput_tokens_per_s;
        assert!((-0.05..0.15).contains(&drop), "{drop}");
    }

    #[test]
    fn cross_machine_collapses_allocation() {
        // Paper Fig. 11(b): cross-machine TP cuts per-chip PCU allocation
        // by ~40% and PMU by ~25%.
        let t2 = tp(2);
        let t4 = tp(4);
        let pcu_drop = 1.0 - t4.pcu_allocation / t2.pcu_allocation;
        let pmu_drop = 1.0 - t4.pmu_allocation / t2.pmu_allocation;
        assert!((0.2..0.6).contains(&pcu_drop), "{pcu_drop}");
        assert!(pmu_drop > 0.05, "{pmu_drop}");
        assert!(pmu_drop < pcu_drop, "{pmu_drop} vs {pcu_drop}");
    }

    #[test]
    fn invalid_degrees_rejected() {
        for d in [0u32, 3, 6] {
            let err = tensor_parallel(
                &RduSpec::sn30(),
                &RduCompilerParams::default(),
                CompilationMode::O1,
                &llama7b(),
                d,
            )
            .unwrap_err();
            assert!(matches!(err, PlatformError::Unsupported(_)), "{d}");
        }
    }

    #[test]
    fn tp1_has_no_communication() {
        let t1 = tp(1);
        assert_eq!(t1.communication_fraction, 0.0);
    }
}
