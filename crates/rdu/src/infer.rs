//! RDU serving model: weights and KV cache resident in DDR.
//!
//! The SN30's 512 GB of DDR swallows any KV cache this benchmark sweeps —
//! capacity is a non-issue — but the 0.2 TB/s feeding it makes decode
//! deeply memory-bound: every generated token re-streams the weights plus
//! the whole cache through the narrowest pipe of the four platforms.

use crate::chip::{RduCompilerParams, RduSpec};
use dabench_core::{max_admissible_batch, AdmissionProbe, InferModel};
use dabench_model::InferenceWorkload;

/// Build the serving model of one RDU.
#[must_use]
pub fn infer_model(spec: &RduSpec, params: &RduCompilerParams) -> InferModel {
    InferModel {
        platform: "rdu".into(),
        peak_tflops: spec.peak_tflops(),
        sustained_efficiency: params.pcu_sustained_efficiency,
        mem_bw_bytes_per_s: spec.ddr_bw_bytes_per_s,
        kv_level: "ddr".into(),
        kv_capacity_bytes: spec.ddr_capacity_bytes,
        step_overhead_s: params.invocation_overhead_s,
    }
}

/// Probe the DDR admission wall for `workload`'s shape: the largest
/// batch in `1..=limit` whose weights + KV cache fit the 512 GB DDR.
#[must_use]
pub fn admission_probe(
    spec: &RduSpec,
    params: &RduCompilerParams,
    workload: &InferenceWorkload,
    limit: u64,
) -> AdmissionProbe {
    let model = infer_model(spec, params);
    max_admissible_batch(workload, limit, |_| model.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::{profile_inference, BoundKind};
    use dabench_model::{InferenceWorkload, ModelConfig, Precision};

    fn w(batch: u64) -> InferenceWorkload {
        InferenceWorkload::new(ModelConfig::llama2_7b(), batch, 512, 128, Precision::Fp16).unwrap()
    }

    #[test]
    fn decode_is_memory_bound_on_ddr() {
        let m = infer_model(&RduSpec::sn30(), &RduCompilerParams::default());
        let r = profile_inference(&m, &w(8)).unwrap();
        assert_eq!(r.decode_bound, BoundKind::MemoryBound);
    }

    #[test]
    fn ddr_capacity_absorbs_large_batches() {
        // The same batch that overflows WSE SRAM and GPU HBM fits in
        // 512 GB with room to spare.
        let m = infer_model(&RduSpec::sn30(), &RduCompilerParams::default());
        let r = profile_inference(&m, &w(64)).unwrap();
        assert!(r.memory.utilization() < 0.5, "{}", r.memory.utilization());
    }

    #[test]
    fn decode_throughput_trails_hbm_class_bandwidth() {
        // 0.2 TB/s vs a 2 TB/s HBM part: same workload, ~10× slower decode.
        let rdu = infer_model(&RduSpec::sn30(), &RduCompilerParams::default());
        let mut hbm = rdu.clone();
        hbm.mem_bw_bytes_per_s = 2.0e12;
        let slow = profile_inference(&rdu, &w(8)).unwrap().decode_tokens_per_s;
        let fast = profile_inference(&hbm, &w(8)).unwrap().decode_tokens_per_s;
        assert!(fast / slow > 5.0, "{}", fast / slow);
    }
}
