//! Sections: the RDU's unit of graph loading and execution.

use crate::chip::{RduCompilerParams, RduSpec};
use serde::{Deserialize, Serialize};

/// PCU assignment of one operator inside a section (drives the paper's
/// operator-level load-imbalance metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpAssignment {
    /// Operator name.
    pub name: String,
    /// FLOPs per section invocation attributable to the operator.
    pub flops: f64,
    /// PCUs assigned by the compiler template.
    pub pcus: u64,
}

impl OpAssignment {
    /// Operator processing rate per invocation (higher = finishes its
    /// share sooner); the scale-free throughput used by Eq. 3.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.flops > 0.0 {
            self.pcus as f64 / self.flops
        } else {
            f64::INFINITY
        }
    }
}

/// One section: a subgraph loaded onto the fabric and invoked one or more
/// times per training step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section name, e.g. `"o3.decoders.fwd.3"` or `"op.l0.qkv_proj.fwd"`.
    pub name: String,
    /// Times the section executes per training step.
    pub invocations: u64,
    /// FLOPs per invocation.
    pub flops_per_invocation: f64,
    /// Weight bytes read from DDR per invocation.
    pub weight_bytes: u64,
    /// Boundary tensor bytes read from DDR per invocation (inputs plus,
    /// for backward sections, the stored forward activations).
    pub input_bytes: u64,
    /// Boundary tensor bytes written to DDR per invocation.
    pub output_bytes: u64,
    /// PCUs allocated.
    pub pcus: u64,
    /// PMUs allocated.
    pub pmus: u64,
    /// Whether the section must be re-loaded onto the fabric for every
    /// invocation (O0's per-operator sections alternate through the layer
    /// program, evicting each other).
    pub reload_per_invocation: bool,
    /// Per-operator PCU assignments (operator-level LI).
    pub ops: Vec<OpAssignment>,
}

impl Section {
    /// Total DDR traffic per invocation, bytes.
    #[must_use]
    pub fn ddr_bytes_per_invocation(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }

    /// Total DDR traffic per step, bytes.
    #[must_use]
    pub fn ddr_bytes_per_step(&self) -> u64 {
        self.ddr_bytes_per_invocation() * self.invocations
    }

    /// Total FLOPs per step.
    #[must_use]
    pub fn flops_per_step(&self) -> f64 {
        self.flops_per_invocation * self.invocations as f64
    }
}

/// Assign PCUs to the ops of a section with the conservative √FLOPs
/// template, then size the section's PCU/PMU claims.
///
/// Each op is a `(name, flops)` pair — the resolved operator name (borrowed
/// from the graph's interner) and its FLOPs for one invocation.
///
/// The template under-provisions large operators relative to their work
/// (a real compiler schedules tiles over time rather than space), which is
/// exactly why measured RDU allocation stays below ~60% in the paper.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn assign_units(
    name: &str,
    ops: &[(&str, f64)],
    invocations: u64,
    weight_bytes: u64,
    input_bytes: u64,
    output_bytes: u64,
    spec: &RduSpec,
    params: &RduCompilerParams,
) -> Section {
    let budget = spec.pcu_count().min(params.max_pcus_per_section);
    // Section sizing: the conservative √FLOPs template sets the section's
    // total PCU claim (the flops entry is the work of ONE invocation;
    // per-layer sections pass the layer-0 template ops).
    let sqrt_total: f64 = ops
        .iter()
        .map(|(_, flops)| flops.max(0.0).sqrt() / params.sqrt_flops_per_pcu)
        .sum();
    let floor = params.min_pcus_per_op * ops.len() as u64;
    let total_pcus = (sqrt_total.round() as u64).clamp(floor.min(budget), budget);

    // Within the section, PCUs are spread proportionally to FLOPs but in
    // coarse quanta (a PCU group is the schedulable unit) — the rounding
    // is what produces the operator-level load imbalance of Fig. 8, and
    // its relative error shrinks as hidden size grows (Fig. 8(b)).
    let quantum = params.pcu_quantum.max(1);
    let flops_total: f64 = ops.iter().map(|(_, flops)| flops.max(0.0)).sum();
    let assignments: Vec<OpAssignment> = ops
        .iter()
        .map(|(op_name, flops)| {
            let share = if flops_total > 0.0 {
                total_pcus as f64 * flops.max(0.0) / flops_total
            } else {
                total_pcus as f64 / ops.len() as f64
            };
            let quantized = ((share / quantum as f64).round() as u64) * quantum;
            OpAssignment {
                name: (*op_name).to_owned(),
                flops: *flops,
                pcus: quantized.max(params.min_pcus_per_op),
            }
        })
        .collect();
    let pcus: u64 = assignments.iter().map(|a| a.pcus).sum::<u64>().min(budget);

    let working = weight_bytes + input_bytes + output_bytes;
    let pmus = ((working as f64 / params.working_bytes_per_pmu).ceil() as u64)
        .max(params.min_pmus_per_section)
        .min(spec.pmu_count());

    let flops_per_invocation: f64 = assignments.iter().map(|a| a.flops).sum();
    Section {
        name: name.to_owned(),
        invocations,
        flops_per_invocation,
        weight_bytes,
        input_bytes,
        output_bytes,
        pcus,
        pmus,
        reload_per_invocation: false,
        ops: assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(ops: &[(&str, f64)]) -> Section {
        assign_units(
            "s",
            ops,
            1,
            1 << 20,
            1 << 18,
            1 << 18,
            &RduSpec::sn30(),
            &RduCompilerParams::default(),
        )
    }

    #[test]
    fn section_sizing_is_sublinear() {
        // Section totals follow the √FLOPs template: 100× the work buys
        // only ~10× the PCUs.
        let s_small = assign(&[("small", 1e9)]);
        let s_big = assign(&[("big", 1e11)]);
        let ratio = s_big.pcus as f64 / s_small.pcus as f64;
        assert!((7.0..14.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn intra_section_split_is_proportional() {
        let s = assign(&[("small", 1e10), ("big", 3e10)]);
        let ratio = s.ops[1].pcus as f64 / s.ops[0].pcus as f64;
        assert!((2.0..4.5).contains(&ratio), "{ratio}");
    }

    #[test]
    fn min_pcus_enforced() {
        let s = assign(&[("tiny", 1.0)]);
        // The floor is min_pcus, possibly rounded up to one quantum.
        assert!(
            s.ops[0].pcus >= 4 && s.ops[0].pcus <= 8,
            "{}",
            s.ops[0].pcus
        );
    }

    #[test]
    fn oversubscription_scales_down() {
        let names: Vec<String> = (0..8).map(|i| format!("h{i}")).collect();
        let huge: Vec<(&str, f64)> = names.iter().map(|n| (n.as_str(), 1e13)).collect();
        let s = assign(&huge);
        assert!(s.pcus <= 640);
    }

    #[test]
    fn pmus_track_working_set() {
        let small = assign_units(
            "s",
            &[("o", 1e9)],
            1,
            1 << 20,
            0,
            0,
            &RduSpec::sn30(),
            &RduCompilerParams::default(),
        );
        let large = assign_units(
            "l",
            &[("o", 1e9)],
            1,
            200 << 20,
            0,
            0,
            &RduSpec::sn30(),
            &RduCompilerParams::default(),
        );
        assert!(large.pmus > small.pmus);
        assert!(large.pmus <= 640);
    }

    #[test]
    fn ddr_accounting() {
        let s = assign_units(
            "s",
            &[("o", 1e9)],
            3,
            100,
            10,
            20,
            &RduSpec::sn30(),
            &RduCompilerParams::default(),
        );
        assert_eq!(s.ddr_bytes_per_invocation(), 130);
        assert_eq!(s.ddr_bytes_per_step(), 390);
    }

    #[test]
    fn zero_flop_ops_have_infinite_throughput() {
        let s = assign(&[("z", 0.0)]);
        assert!(s.ops[0].throughput().is_infinite());
    }
}
