//! [`Platform`] and [`Scalable`] implementations for the RDU model.

use crate::modes::partition;
use crate::schedule::execute_sections;
use crate::tp::tensor_parallel;
use crate::Rdu;
use dabench_core::{
    ChipProfile, ComputeUnitSpec, HardwareSpec, Memoizable, MemoryLevelSpec, MemoryLevelUsage,
    MemoryScope, ParallelStrategy, Platform, PlatformError, Scalable, ScalingProfile,
    SectionProfile, TaskProfile,
};
use dabench_model::TrainingWorkload;

impl Platform for Rdu {
    fn name(&self) -> &str {
        match self.mode() {
            crate::CompilationMode::O0 => "sambanova-sn30-o0",
            crate::CompilationMode::O1 => "sambanova-sn30-o1",
            crate::CompilationMode::O3 => "sambanova-sn30-o3",
        }
    }

    fn spec(&self) -> HardwareSpec {
        let s = self.rdu_spec();
        HardwareSpec {
            name: "SambaNova SN30 RDU".to_owned(),
            compute_units: vec![
                ComputeUnitSpec {
                    kind: "pcu".to_owned(),
                    count: s.pcu_count(),
                },
                ComputeUnitSpec {
                    kind: "pmu".to_owned(),
                    count: s.pmu_count(),
                },
            ],
            peak_tflops: s.peak_tflops(),
            memory_levels: vec![
                MemoryLevelSpec {
                    name: "pmu-scratch".to_owned(),
                    scope: MemoryScope::OnChip,
                    capacity_bytes: s.on_chip_bytes(),
                    // PMU bandwidth is not public (Sec. IV-B.3).
                    bandwidth_bytes_per_s: None,
                },
                MemoryLevelSpec {
                    name: "ddr".to_owned(),
                    scope: MemoryScope::OffChip,
                    capacity_bytes: s.ddr_capacity_bytes,
                    bandwidth_bytes_per_s: Some(s.ddr_bw_bytes_per_s),
                },
            ],
        }
    }

    fn profile(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
        let spec = self.rdu_spec();
        let params = self.compiler_params();

        // The RDU trains arbitrarily large models as long as the training
        // state fits in DDR. In O1/O3 the quadratic attention internals
        // are tiled on chip and recomputed, so only linear-size
        // activations are DDR-resident.
        let eb = workload.precision().bytes_per_element();
        let graph = dabench_core::compile::training_graph(workload);
        let summary = graph.summary();
        let resident_acts: u64 = if self.mode() == crate::CompilationMode::O0 {
            summary.forward_out_elems
        } else {
            summary.forward_out_elems_no_attn_internal
        } * eb;
        let state = workload.training_state_bytes() + resident_acts;
        if state > spec.ddr_capacity_bytes {
            return Err(PlatformError::OutOfMemory {
                level: "ddr".to_owned(),
                required_bytes: state,
                capacity_bytes: spec.ddr_capacity_bytes,
            });
        }

        let sections = partition(workload, spec, params, self.mode());
        let exec = execute_sections(&sections, workload, spec, params);

        let section_profiles: Vec<SectionProfile> = sections
            .iter()
            .zip(&exec.timings)
            .map(|(s, t)| SectionProfile {
                name: s.name.clone(),
                runtime_s: t.runtime_s,
                unit_usage: vec![
                    ("pcu".to_owned(), s.pcus, spec.pcu_count()),
                    ("pmu".to_owned(), s.pmus, spec.pmu_count()),
                ],
                tasks: s
                    .ops
                    .iter()
                    .filter(|o| o.flops > 0.0)
                    .map(|o| TaskProfile::new(o.name.clone(), o.throughput(), o.pcus as f64))
                    .collect(),
            })
            .collect();

        let peak_working = sections
            .iter()
            .map(|s| s.ddr_bytes_per_invocation())
            .max()
            .unwrap_or(0);

        Ok(ChipProfile {
            unit_usage: vec![],
            tasks: vec![],
            sections: section_profiles,
            memory: vec![
                MemoryLevelUsage {
                    name: "pmu-scratch".to_owned(),
                    used_bytes: peak_working.min(spec.on_chip_bytes()),
                    capacity_bytes: spec.on_chip_bytes(),
                },
                MemoryLevelUsage {
                    name: "ddr".to_owned(),
                    used_bytes: state,
                    capacity_bytes: spec.ddr_capacity_bytes,
                },
            ],
            achieved_tflops: exec.achieved_tflops,
            throughput_tokens_per_s: exec.throughput_tokens_per_s,
            step_time_s: exec.step_time_s,
        })
    }
}

impl Memoizable for Rdu {
    fn cache_token(&self) -> String {
        crate::cache_token_of(self.mode(), self.rdu_spec(), self.compiler_params())
    }

    fn cache_key(&self) -> dabench_core::CacheKey {
        self.cache_key
    }
}

impl Scalable for Rdu {
    fn scale(
        &self,
        workload: &TrainingWorkload,
        strategy: ParallelStrategy,
    ) -> Result<ScalingProfile, PlatformError> {
        match strategy {
            ParallelStrategy::TensorParallel { degree } => {
                let plan = tensor_parallel(
                    self.rdu_spec(),
                    self.compiler_params(),
                    self.mode(),
                    workload,
                    degree,
                )?;
                Ok(ScalingProfile {
                    strategy,
                    throughput_tokens_per_s: plan.throughput_tokens_per_s,
                    communication_fraction: plan.communication_fraction,
                    per_unit_allocation: vec![
                        ("pcu".to_owned(), plan.pcu_allocation),
                        ("pmu".to_owned(), plan.pmu_allocation),
                    ],
                    detail: vec![(
                        "cross_machine".to_owned(),
                        if plan.cross_machine { 1.0 } else { 0.0 },
                    )],
                })
            }
            _ => Err(PlatformError::Unsupported(
                "the RDU scales via tensor parallelism".to_owned(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompilationMode;
    use dabench_core::tier1;
    use dabench_model::{ModelConfig, Precision};

    fn w(h: u64, l: u64) -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(h, l), 8, 1024, Precision::Bf16)
    }

    #[test]
    fn tier1_reports_sectioned_metrics() {
        let rdu = Rdu::with_mode(CompilationMode::O3);
        let r = tier1::run(&rdu, &w(768, 12)).unwrap();
        let pcu = r.allocation_of("pcu").unwrap();
        assert!((0.2..0.68).contains(&pcu), "{pcu}");
        assert!(r.allocation_of("pmu").is_some());
        assert!(r.load_imbalance.is_some());
        // DDR roofline → memory-bound for LLM training.
        assert_eq!(r.bound, Some(dabench_core::BoundKind::MemoryBound));
    }

    #[test]
    fn o3_allocation_exceeds_o0() {
        let o0 = tier1::run(&Rdu::with_mode(CompilationMode::O0), &w(768, 12)).unwrap();
        let o3 = tier1::run(&Rdu::with_mode(CompilationMode::O3), &w(768, 12)).unwrap();
        assert!(
            o3.allocation_of("pcu").unwrap() > o0.allocation_of("pcu").unwrap(),
            "o3 {:?} vs o0 {:?}",
            o3.allocation_of("pcu"),
            o0.allocation_of("pcu")
        );
    }

    #[test]
    fn o1_li_beats_o3_li() {
        // Paper Fig. 8: O1's fusion gives markedly better operator-level
        // balance than O3.
        let o1 = tier1::run(&Rdu::with_mode(CompilationMode::O1), &w(1024, 12)).unwrap();
        let o3 = tier1::run(&Rdu::with_mode(CompilationMode::O3), &w(1024, 12)).unwrap();
        assert!(
            o1.load_imbalance.unwrap() > o3.load_imbalance.unwrap(),
            "o1 {:?} vs o3 {:?}",
            o1.load_imbalance,
            o3.load_imbalance
        );
    }

    #[test]
    fn huge_models_fail_on_ddr() {
        let rdu = Rdu::default();
        let huge = TrainingWorkload::new(ModelConfig::llama2_70b(), 64, 4096, Precision::Bf16);
        let err = rdu.profile(&huge).unwrap_err();
        assert!(matches!(err, PlatformError::OutOfMemory { .. }));
    }

    #[test]
    fn scale_rejects_pipeline_parallel() {
        let err = Rdu::default()
            .scale(
                &w(768, 4),
                ParallelStrategy::PipelineParallel { devices: 4 },
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }
}
