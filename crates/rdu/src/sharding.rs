//! LM-head matrix sharding in O1 mode (Table II(b) of the paper).
//!
//! Above a working-set threshold the O1 compiler splits the vocabulary
//! projection into shards and groups the shards into sections. The paper
//! observes that the per-section PCU/PMU allocation then correlates with
//! the shard/section count rather than the hidden size — the behaviour
//! modelled here.

use crate::chip::RduCompilerParams;
use serde::{Deserialize, Serialize};

/// Sharding decision for the LM head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Number of matrix shards.
    pub shards: u64,
    /// Number of sections the shards are grouped into.
    pub sections: u64,
    /// PCUs allocated per shard section.
    pub pcus_per_section: u64,
    /// PMUs allocated per shard section.
    pub pmus_per_section: u64,
}

/// Plan the LM-head sharding for a matrix of `hidden_size × vocab` at the
/// given element width.
///
/// # Example
///
/// ```
/// use dabench_rdu::{shard_lm_head, RduCompilerParams};
/// let p = RduCompilerParams::default();
/// // LLaMA-2-style head at h=3072 shards coarsely…
/// let small = shard_lm_head(3072, 32_000, 2, &p);
/// // …while h=8192 trips the fine-shard threshold.
/// let big = shard_lm_head(8192, 32_000, 2, &p);
/// assert!(big.shards > small.shards);
/// assert!(big.sections >= small.sections);
/// ```
#[must_use]
pub fn shard_lm_head(
    hidden_size: u64,
    vocab: u64,
    bytes_per_element: u64,
    params: &RduCompilerParams,
) -> ShardPlan {
    let matrix_bytes = (hidden_size * vocab * bytes_per_element) as f64;
    let shard_cap = if hidden_size > params.shard_fine_threshold {
        params.shard_fine_bytes
    } else {
        params.shard_coarse_bytes
    };
    let shards = (matrix_bytes / shard_cap).ceil().max(1.0) as u64;
    let sections = (shards as f64 / 14.0).ceil().max(2.0) as u64;

    // Per-section unit allocation correlates with the shard count, not the
    // matrix size (the paper's Table II(b) observation): finer shards
    // spread compute over more, smaller GEMMs → fewer PCUs per section.
    let pcu_frac = (0.82 - 0.007 * shards as f64).clamp(0.45, 0.82);
    let pmu_frac = (0.47 + 0.0013 * shards as f64).clamp(0.40, 0.56);
    ShardPlan {
        shards,
        sections,
        pcus_per_section: (640.0 * pcu_frac).round() as u64,
        pmus_per_section: (640.0 * pmu_frac).round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(h: u64) -> ShardPlan {
        shard_lm_head(h, 32_000, 2, &RduCompilerParams::default())
    }

    #[test]
    fn shard_counts_follow_table2b_shape() {
        // Paper: h=3072→9 shards, 4096→9, 5120→26, 6686→30, 8192→30
        // (2/2/2/3/3 sections). Our rule reproduces the jump at the fine
        // threshold and the section growth.
        assert_eq!(plan(3072).shards, 9);
        assert!(
            (9..=12).contains(&plan(4096).shards),
            "{}",
            plan(4096).shards
        );
        assert!(
            (26..=29).contains(&plan(5120).shards),
            "{}",
            plan(5120).shards
        );
        assert!(
            (30..=38).contains(&plan(6686).shards),
            "{}",
            plan(6686).shards
        );
        assert!(plan(8192).shards >= plan(6686).shards);
    }

    #[test]
    fn sections_grow_with_shards() {
        assert_eq!(plan(3072).sections, 2);
        assert!(plan(8192).sections >= 3);
    }

    #[test]
    fn pcus_stay_below_hardware_limit() {
        for h in [3072, 4096, 5120, 6686, 8192] {
            let p = plan(h);
            assert!(p.pcus_per_section < 640, "h={h}");
            assert!(p.pmus_per_section < 640, "h={h}");
        }
    }

    #[test]
    fn finer_shards_get_fewer_pcus_each() {
        assert!(plan(8192).pcus_per_section < plan(3072).pcus_per_section);
    }

    #[test]
    fn tiny_matrix_is_single_shard_min_two_sections() {
        let p = shard_lm_head(64, 1000, 2, &RduCompilerParams::default());
        assert_eq!(p.shards, 1);
        assert_eq!(p.sections, 2);
    }
}
