//! Cross-validation: the WSE runtime's closed-form pipeline timing must
//! agree with a full discrete-event simulation of the same kernel chain.

use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_sim::{Resource, Simulation, TaskSpec};
use dabench_wse::{compile, execute, Wse};

fn workload(layers: u64, batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, layers),
        batch,
        1024,
        Precision::Fp16,
    )
}

/// Build an event-level simulation of the kernel pipeline: one resource
/// per kernel, `batch` items flowing through in order.
fn event_sim_makespan(stage_times: &[(String, f64)], batch: u64) -> f64 {
    let mut sim = Simulation::new(
        stage_times
            .iter()
            .map(|(name, _)| Resource::new(name.clone(), 1))
            .collect(),
    );
    let stages = stage_times.len();
    let mut prev: Vec<Option<usize>> = vec![None; stages];
    for item in 0..batch {
        for (s, (_, t)) in stage_times.iter().enumerate() {
            let mut spec = TaskSpec::new(format!("i{item}s{s}"), s, *t);
            if s > 0 {
                spec = spec.after(prev[s - 1].expect("upstream scheduled"));
            }
            if let Some(p) = prev[s] {
                spec = spec.after(p);
            }
            prev[s] = Some(sim.add_task(spec));
        }
    }
    sim.run().expect("valid pipeline").makespan()
}

#[test]
fn closed_form_matches_event_simulation() {
    let wse = Wse::default();
    for (layers, batch) in [(6u64, 16u64), (12, 32), (24, 8)] {
        let w = workload(layers, batch);
        let c = compile(wse.wse_spec(), wse.compiler_params(), &w, None).expect("compiles");
        let e = execute(wse.wse_spec(), wse.compiler_params(), &c, &w);
        let sim_time = event_sim_makespan(&e.stage_times_s, batch);
        let err = (sim_time - e.step_time_s).abs() / e.step_time_s;
        assert!(
            err < 1e-9,
            "L={layers} B={batch}: closed-form {} vs event-sim {sim_time}",
            e.step_time_s
        );
    }
}

#[test]
fn event_sim_confirms_bottleneck_dominance() {
    // Artificially slowing the bottleneck stage by 2× should slow the
    // whole pipeline by nearly 2× at large batch — verified at event level.
    let wse = Wse::default();
    let w = workload(12, 128);
    let c = compile(wse.wse_spec(), wse.compiler_params(), &w, None).expect("compiles");
    let e = execute(wse.wse_spec(), wse.compiler_params(), &c, &w);

    let base = event_sim_makespan(&e.stage_times_s, 128);
    let mut slowed = e.stage_times_s.clone();
    let bottleneck = slowed
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite"))
        .map(|(i, _)| i)
        .expect("stages");
    slowed[bottleneck].1 *= 2.0;
    let slow = event_sim_makespan(&slowed, 128);
    let ratio = slow / base;
    assert!((1.6..2.1).contains(&ratio), "{ratio}");
}
