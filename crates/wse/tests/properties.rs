//! Property-based tests of the WSE compiler over random configurations.

use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_wse::{compile, execute, Wse, WseSpec};
use proptest::prelude::*;

fn workload(hs_mult: u64, layers: u64, batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(64 * hs_mult, layers),
        batch,
        512,
        Precision::Fp16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// When compilation succeeds, the allocation is within the chip and
    /// every kernel respects its floor and a positive PE count.
    #[test]
    fn compilation_invariants(
        hs_mult in 2u64..16,
        layers in 1u64..40,
        batch in 1u64..64,
    ) {
        let wse = Wse::default();
        let w = workload(hs_mult, layers, batch);
        let Ok(c) = compile(wse.wse_spec(), wse.compiler_params(), &w, None) else {
            return Ok(()); // OOM/placement failures are valid outcomes
        };
        prop_assert!(c.allocated_pes() <= c.chip_pes);
        prop_assert!(c.allocation_ratio() <= 1.0);
        for k in &c.kernels {
            prop_assert!(k.comp_pes >= 1, "{}", k.kernel.name());
            prop_assert!(k.comp_pes >= k.floor_pes.min(k.cap_pes), "{}", k.kernel.name());
            prop_assert!((0.0..=1.0).contains(&k.memory_efficiency));
            prop_assert!(k.bytes_per_pe(wse.compiler_params()) <= 48.0 * 1024.0 + 1.0);
        }
        // Placement covers exactly the allocated PEs.
        prop_assert_eq!(c.placement.used_pes(), c.allocated_pes());
    }

    /// Execution identities hold for every compilable configuration.
    #[test]
    fn execution_identities(
        hs_mult in 2u64..12,
        layers in 1u64..30,
        batch in 1u64..64,
    ) {
        let wse = Wse::default();
        let w = workload(hs_mult, layers, batch);
        let Ok(c) = compile(wse.wse_spec(), wse.compiler_params(), &w, None) else {
            return Ok(());
        };
        let e = execute(wse.wse_spec(), wse.compiler_params(), &c, &w);
        prop_assert!(e.step_time_s > 0.0 && e.step_time_s.is_finite());
        let implied = w.training_flops_per_step() / e.step_time_s / 1e12;
        prop_assert!((implied - e.achieved_tflops).abs() / implied < 1e-9);
        prop_assert!(e.pipeline_efficiency > 0.0 && e.pipeline_efficiency <= 1.0);
        prop_assert!(e.bottleneck_s > 0.0);
        // Achieved throughput never exceeds the chip's peak.
        prop_assert!(e.achieved_tflops <= wse.wse_spec().peak_tflops());
    }

    /// A smaller PE budget never increases the allocation.
    #[test]
    fn budget_monotonicity(
        hs_mult in 2u64..12,
        layers in 1u64..20,
        denom in 2u64..8,
    ) {
        let wse = Wse::default();
        let spec = WseSpec::cs2();
        let w = workload(hs_mult, layers, 16);
        let full = compile(wse.wse_spec(), wse.compiler_params(), &w, None);
        let slice = compile(
            wse.wse_spec(),
            wse.compiler_params(),
            &w,
            Some(spec.pe_count() / denom),
        );
        if let (Ok(full), Ok(slice)) = (full, slice) {
            prop_assert!(slice.allocated_pes() <= full.allocated_pes() + denom);
        }
    }

    /// Deeper models never allocate more PEs per attention kernel.
    #[test]
    fn elasticity_is_monotone(hs_mult in 4u64..12, layers in 2u64..30) {
        use dabench_wse::KernelKind;
        let wse = Wse::default();
        let attn_pes = |l: u64| -> Option<u64> {
            compile(wse.wse_spec(), wse.compiler_params(), &workload(hs_mult, l, 16), None)
                .ok()
                .and_then(|c| c.kernel(KernelKind::Attention { layer: 0 }).map(|k| k.comp_pes))
        };
        if let (Some(shallow), Some(deep)) = (attn_pes(layers), attn_pes(layers + 6)) {
            prop_assert!(deep <= shallow);
        }
    }
}
