//! Pipelined execution of a compiled WSE graph.
//!
//! Once placed, the kernel chain behaves as a spatial pipeline over the
//! batch: each sequence flows through embedding → layers → head → loss (and
//! back), with steady-state throughput set by the slowest kernel. This is
//! the mechanism behind the paper's Fig. 12 batch-size saturation on the
//! WSE (throughput ∝ B / (B + depth)).

use crate::chip::{WseCompilerParams, WseSpec};
use crate::compile::WseCompilation;
use crate::kernel::KernelKind;
use dabench_core::TaskProfile;
use dabench_model::{Precision, TrainingWorkload};
use dabench_sim::{steady_state_analysis, PipelineStage};
use serde::{Deserialize, Serialize};

/// Relative per-PE throughput of a precision format versus FP16.
#[must_use]
pub(crate) fn precision_rate_factor(precision: Precision, params: &WseCompilerParams) -> f64 {
    match precision {
        Precision::Fp32 => 0.5,
        // FP8 is a KV-storage format; PE compute runs at the 16-bit rate.
        Precision::Fp16 | Precision::Bf16 | Precision::Fp8 => 1.0,
        Precision::Cb16 => params.cb16_speedup,
    }
}

/// Result of executing a compiled workload on the WSE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseExecution {
    /// Per-kernel stage time for one pipeline item (one sequence), seconds.
    pub stage_times_s: Vec<(String, f64)>,
    /// Slowest stage time, seconds.
    pub bottleneck_s: f64,
    /// Wall-clock time of one optimizer step, seconds.
    pub step_time_s: f64,
    /// Fraction of the asymptotic pipeline rate achieved at this batch.
    pub pipeline_efficiency: f64,
    /// Achieved compute throughput, TFLOP/s.
    pub achieved_tflops: f64,
    /// Training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Fraction of allocated compute capacity kept busy (Fig. 9(a) green).
    pub compute_time_fraction: f64,
    /// Per-kernel profiles feeding the load-imbalance metric.
    pub task_profiles: Vec<TaskProfile>,
}

/// Execute `compilation` for `workload`, producing timing and throughput.
#[must_use]
pub fn execute(
    spec: &WseSpec,
    params: &WseCompilerParams,
    compilation: &WseCompilation,
    workload: &TrainingWorkload,
) -> WseExecution {
    use dabench_core::obs;
    obs::span(obs::Phase::Execute, "wse.execute", || {
        let e = execute_inner(spec, params, compilation, workload);
        obs::counter("wse.stages", e.stage_times_s.len() as f64);
        obs::counter("wse.step_time_s", e.step_time_s);
        obs::counter("wse.achieved_tflops", e.achieved_tflops);
        e
    })
}

fn execute_inner(
    spec: &WseSpec,
    params: &WseCompilerParams,
    compilation: &WseCompilation,
    workload: &TrainingWorkload,
) -> WseExecution {
    let batch = workload.batch_size();
    let rate = precision_rate_factor(workload.precision(), params);

    // GEMM kernel stage times (per pipeline item = one sequence).
    let mut stage_times: Vec<(String, f64)> = Vec::with_capacity(compilation.kernels.len());
    let mut gemm_sum = 0.0;
    let mut gemm_count = 0usize;
    for k in &compilation.kernels {
        let item_flops = k.kernel.flops / batch as f64;
        let t = item_flops
            / (k.comp_pes as f64
                * spec.peak_flops_per_pe
                * params.sustained_gemm_efficiency
                * k.memory_efficiency
                * rate);
        if !matches!(k.kernel.kind, KernelKind::Embedding | KernelKind::Loss) {
            gemm_sum += t;
            gemm_count += 1;
        }
        stage_times.push((k.kernel.name(), t));
    }
    // Embedding and loss are data-movement kernels: their service time
    // tracks the token stream period rather than their (negligible) FLOPs.
    let mean_gemm = if gemm_count > 0 {
        gemm_sum / gemm_count as f64
    } else {
        0.0
    };
    for (i, k) in compilation.kernels.iter().enumerate() {
        if matches!(k.kernel.kind, KernelKind::Embedding | KernelKind::Loss) {
            stage_times[i].1 = stage_times[i]
                .1
                .max(mean_gemm * params.io_kernel_rate_factor);
        }
    }

    let stages: Vec<PipelineStage> = stage_times
        .iter()
        .map(|(name, t)| PipelineStage::new(name.clone(), *t))
        .collect();
    let report = steady_state_analysis(&stages, batch);

    let step_time = report.total_time;
    let step_flops = dabench_core::compile::training_graph(workload)
        .summary()
        .total_flops;
    let achieved_tflops = step_flops / step_time / 1e12;
    let throughput = workload.tokens_per_step() as f64 / step_time;

    // How busy the allocated compute region is: each kernel works
    // stage_k / bottleneck of the steady-state period, scaled by how much
    // of the step is steady state.
    let busy: f64 = stage_times
        .iter()
        .map(|(_, t)| t / report.bottleneck_time)
        .sum::<f64>()
        / stage_times.len() as f64;
    let compute_time_fraction = busy * report.pipeline_efficiency;

    let task_profiles = compilation
        .kernels
        .iter()
        .zip(&stage_times)
        .map(|(k, (name, t))| TaskProfile::new(name.clone(), 1.0 / t, k.total_pes() as f64))
        .collect();

    WseExecution {
        stage_times_s: stage_times,
        bottleneck_s: report.bottleneck_time,
        step_time_s: step_time,
        pipeline_efficiency: report.pipeline_efficiency,
        achieved_tflops,
        throughput_tokens_per_s: throughput,
        compute_time_fraction,
        task_profiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use dabench_core::metrics::load_imbalance;
    use dabench_model::ModelConfig;

    fn run(layers: u64, batch: u64, precision: Precision) -> WseExecution {
        let spec = WseSpec::cs2();
        let params = WseCompilerParams::default();
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, layers), batch, 1024, precision);
        let c = compile(&spec, &params, &w, None).unwrap();
        execute(&spec, &params, &c, &w)
    }

    #[test]
    fn peak_tflops_in_paper_band() {
        // 18-30 layers peak at 327-338 TFLOPs in the paper; accept ±15%.
        let e = run(24, 256, Precision::Fp16);
        assert!(
            (280.0..390.0).contains(&e.achieved_tflops),
            "{}",
            e.achieved_tflops
        );
    }

    #[test]
    fn tflops_rise_then_fall_with_depth() {
        let small = run(6, 256, Precision::Fp16).achieved_tflops;
        let mid = run(24, 256, Precision::Fp16).achieved_tflops;
        let deep = run(66, 256, Precision::Fp16).achieved_tflops;
        assert!(mid > small, "{mid} !> {small}");
        assert!(mid > deep, "{mid} !> {deep}");
    }

    #[test]
    fn load_imbalance_in_paper_band() {
        for l in [6, 24, 48] {
            let e = run(l, 256, Precision::Fp16);
            let li = load_imbalance(&e.task_profiles).unwrap();
            assert!((0.94..=1.0).contains(&li), "L={l}: {li}");
        }
    }

    #[test]
    fn throughput_saturates_with_batch() {
        let t32 = run(12, 32, Precision::Fp16).throughput_tokens_per_s;
        let t200 = run(12, 200, Precision::Fp16).throughput_tokens_per_s;
        let t400 = run(12, 400, Precision::Fp16).throughput_tokens_per_s;
        // Strong gain up to ~200, weak beyond (paper Fig. 12).
        assert!(t200 / t32 > 1.4, "{}", t200 / t32);
        assert!(t400 / t200 < 1.25, "{}", t400 / t200);
    }

    #[test]
    fn cb16_beats_fp16_modestly() {
        let fp16 = run(12, 256, Precision::Fp16).throughput_tokens_per_s;
        let cb16 = run(12, 256, Precision::Cb16).throughput_tokens_per_s;
        let gain = cb16 / fp16 - 1.0;
        // Paper Table IV: +10.7%.
        assert!((0.05..0.18).contains(&gain), "{gain}");
    }

    #[test]
    fn fp32_halves_throughput() {
        let fp16 = run(12, 256, Precision::Fp16).throughput_tokens_per_s;
        let fp32 = run(12, 256, Precision::Fp32).throughput_tokens_per_s;
        assert!(fp32 < 0.65 * fp16);
    }

    #[test]
    fn compute_fraction_is_a_fraction() {
        let e = run(24, 256, Precision::Fp16);
        assert!(e.compute_time_fraction > 0.0 && e.compute_time_fraction <= 1.0);
    }

    #[test]
    fn stage_count_matches_kernels() {
        let e = run(12, 64, Precision::Fp16);
        assert_eq!(e.stage_times_s.len(), 27);
        assert_eq!(e.task_profiles.len(), 27);
    }
}
