//! Event-level weight-streaming schedule.
//!
//! [`crate::weight_streaming`] gives the closed-form throughput estimate;
//! this module builds the actual layer-serial schedule — weights of layer
//! `k+1` stream in over the external link *while* layer `k` computes on the
//! wafer — using the discrete-event engine, and reports how much of the
//! streaming the overlap hides. This is the mechanism that makes the mode
//! only ~20% slower than fully-resident execution for small models and
//! increasingly stream-bound for very large ones.

use crate::chip::{WseCompilerParams, WseSpec};
use crate::kernel::{kernels_of, Kernel};
use crate::runtime::precision_rate_factor;
use dabench_model::TrainingWorkload;
use dabench_sim::{Resource, SimError, Simulation, TaskSpec};
use serde::{Deserialize, Serialize};

/// Per-kernel record of the streaming schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamedLayer {
    /// Kernel name.
    pub name: String,
    /// Time to stream the kernel's weights over the external link, seconds.
    pub stream_time_s: f64,
    /// Whole-wafer compute time of the kernel, seconds.
    pub compute_time_s: f64,
}

/// An event-scheduled weight-streaming execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSchedule {
    /// Per-kernel costs, in execution order.
    pub layers: Vec<StreamedLayer>,
    /// Step time with stream/compute overlap, seconds.
    pub overlapped_step_s: f64,
    /// Step time if streaming and compute were serialized, seconds.
    pub serial_step_s: f64,
    /// Fraction of total streaming hidden behind compute (`0..=1`).
    pub overlap_efficiency: f64,
    /// Training throughput with overlap, tokens/second.
    pub throughput_tokens_per_s: f64,
}

fn kernel_costs(
    k: &Kernel,
    spec: &WseSpec,
    params: &WseCompilerParams,
    rate: f64,
    weight_elem_bytes: u64,
) -> StreamedLayer {
    let usable =
        params.usable_grid_fraction * spec.pe_count() as f64 / (1.0 + params.transmission_ratio);
    let compute =
        k.flops / (usable * spec.peak_flops_per_pe * params.weight_streaming_efficiency * rate);
    // Weights stream once for forward and once for backward; fold both into
    // the kernel's single scheduling unit.
    let stream = 2.0 * (k.params * weight_elem_bytes) as f64 / spec.external_bw_bytes_per_s;
    StreamedLayer {
        name: k.name(),
        stream_time_s: stream,
        compute_time_s: compute,
    }
}

/// Build and execute the streaming schedule for `workload`.
///
/// Two resources — the external ingest link and the wafer — with layer
/// `k`'s compute depending on its own stream and on layer `k-1`'s compute;
/// the link runs ahead, prefetching.
///
/// # Panics
///
/// Panics on non-finite kernel costs (a zero-bandwidth link in `spec`);
/// use [`try_streaming_schedule`] to get the error instead.
#[must_use]
pub fn streaming_schedule(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
) -> StreamingSchedule {
    match try_streaming_schedule(spec, params, workload) {
        Ok(s) => s,
        Err(e) => panic!("streaming schedule construction failed: {e}"),
    }
}

/// Fallible variant of [`streaming_schedule`].
///
/// # Errors
///
/// [`SimError::InvalidDuration`] when a kernel's stream or compute cost is
/// non-finite (degenerate `spec`, e.g. zero external bandwidth).
pub fn try_streaming_schedule(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
) -> Result<StreamingSchedule, SimError> {
    use dabench_core::obs;
    obs::span(obs::Phase::Execute, "wse.streaming", || {
        let s = try_streaming_schedule_inner(spec, params, workload);
        if let Ok(s) = &s {
            obs::counter("wse.streamed_layers", s.layers.len() as f64);
            obs::counter("wse.overlap_efficiency", s.overlap_efficiency);
        }
        s
    })
}

fn try_streaming_schedule_inner(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
) -> Result<StreamingSchedule, SimError> {
    let rate = precision_rate_factor(workload.precision(), params);
    let weight_elem_bytes = workload.precision().bytes_per_element();
    let layers: Vec<StreamedLayer> = kernels_of(workload)
        .iter()
        .map(|k| kernel_costs(k, spec, params, rate, weight_elem_bytes))
        .collect();

    let mut sim = Simulation::new(vec![
        Resource::try_new("ingest", 1)?,
        Resource::try_new("wafer", 1)?,
    ]);
    let mut prev_compute: Option<usize> = None;
    let mut prev_stream: Option<usize> = None;
    for (i, l) in layers.iter().enumerate() {
        let mut stream = TaskSpec::try_new(format!("stream{i}"), 0, l.stream_time_s)?;
        if let Some(p) = prev_stream {
            stream = stream.after(p);
        }
        let stream_id = sim.add_task(stream);
        prev_stream = Some(stream_id);
        let mut compute =
            TaskSpec::try_new(format!("compute{i}"), 1, l.compute_time_s)?.after(stream_id);
        if let Some(p) = prev_compute {
            compute = compute.after(p);
        }
        prev_compute = Some(sim.add_task(compute));
    }
    let result = sim.run()?;
    if dabench_core::obs::is_enabled() {
        // Bridge the per-resource timelines (ingest link, wafer) into the
        // trace as simulated-time slices.
        dabench_sim::trace::record_timelines(&dabench_sim::trace::timelines(&result));
    }

    let total_stream: f64 = layers.iter().map(|l| l.stream_time_s).sum();
    let total_compute: f64 = layers.iter().map(|l| l.compute_time_s).sum();
    let overlapped = result.makespan();
    let serial = total_stream + total_compute;
    let hidden = (serial - overlapped).max(0.0);
    Ok(StreamingSchedule {
        overlap_efficiency: if total_stream > 0.0 {
            (hidden / total_stream).min(1.0)
        } else {
            1.0
        },
        throughput_tokens_per_s: workload.tokens_per_step() as f64 / overlapped,
        overlapped_step_s: overlapped,
        serial_step_s: serial,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn schedule(model: ModelConfig) -> StreamingSchedule {
        let w = TrainingWorkload::new(model, 256, 1024, Precision::Fp16);
        streaming_schedule(&WseSpec::cs2(), &WseCompilerParams::default(), &w)
    }

    #[test]
    fn streaming_is_negligible_for_small_models() {
        // At batch 256 the compute dwarfs the streamed weights: the
        // overlapped step is within a whisker of pure compute.
        let s = schedule(ModelConfig::gpt2_small());
        let total_compute: f64 = s.layers.iter().map(|l| l.compute_time_s).sum();
        assert!(s.overlapped_step_s < total_compute * 1.001);
        assert!(s.overlapped_step_s < s.serial_step_s);
    }

    #[test]
    fn schedule_is_bounded_by_both_resources() {
        let s = schedule(ModelConfig::gpt2_small());
        let total_stream: f64 = s.layers.iter().map(|l| l.stream_time_s).sum();
        let total_compute: f64 = s.layers.iter().map(|l| l.compute_time_s).sum();
        assert!(s.overlapped_step_s >= total_stream.max(total_compute) - 1e-12);
        assert!(s.overlapped_step_s <= s.serial_step_s + 1e-12);
    }

    #[test]
    fn closed_form_agrees_within_overlap_slack() {
        // The analytic weight_streaming() serializes stream and compute;
        // the event schedule can only be faster, by at most the streamed
        // time.
        let w = TrainingWorkload::new(ModelConfig::gpt2_small(), 256, 1024, Precision::Fp16);
        let analytic =
            crate::scale::weight_streaming(&WseSpec::cs2(), &WseCompilerParams::default(), &w)
                .unwrap();
        let event = streaming_schedule(&WseSpec::cs2(), &WseCompilerParams::default(), &w);
        assert!(event.overlapped_step_s <= analytic.step_time_s * 1.001);
        let gap = analytic.step_time_s - event.overlapped_step_s;
        let total_stream: f64 = event.layers.iter().map(|l| l.stream_time_s).sum();
        assert!(gap <= total_stream + 1e-9, "{gap} vs {total_stream}");
    }

    #[test]
    fn slow_links_make_the_schedule_stream_bound() {
        // At batch 1 on a link 20× slower than MemoryX, streaming can no
        // longer hide behind compute: the step stretches past it.
        let w = TrainingWorkload::new(ModelConfig::gpt2_xl(), 1, 1024, Precision::Fp16);
        let mut slow = WseSpec::cs2();
        slow.external_bw_bytes_per_s /= 20.0;
        let s = streaming_schedule(&slow, &WseCompilerParams::default(), &w);
        let total_compute: f64 = s.layers.iter().map(|l| l.compute_time_s).sum();
        let total_stream: f64 = s.layers.iter().map(|l| l.stream_time_s).sum();
        assert!(total_stream > total_compute);
        assert!(s.overlapped_step_s > total_compute * 1.5);
        // Overlap still hides a meaningful share of the compute-side wait.
        assert!(s.overlapped_step_s < s.serial_step_s);
    }

    #[test]
    fn layer_records_cover_all_kernels() {
        let s = schedule(ModelConfig::gpt2_small());
        assert_eq!(s.layers.len(), 27); // 2L+3 kernels for 12 layers
        assert!(s.layers.iter().all(|l| l.compute_time_s > 0.0));
    }
}
