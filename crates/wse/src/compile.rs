//! The modelled WSE graph compiler: elastic PE allocation, placement and
//! per-PE memory layout.

use crate::chip::{WseCompilerParams, WseSpec};
use crate::kernel::{kernels_of, Kernel, KernelKind};
use crate::placement::Placement;
use dabench_core::PlatformError;
use dabench_model::{Precision, TrainingWorkload};
use serde::{Deserialize, Serialize};

/// A kernel after compilation: PE allocation and memory layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledKernel {
    /// The logical kernel.
    pub kernel: Kernel,
    /// Computation PEs allocated.
    pub comp_pes: u64,
    /// Transmission (routing) PEs allocated.
    pub trans_pes: u64,
    /// The kernel's scalability cap in computation PEs.
    pub cap_pes: u64,
    /// The kernel's floor (weights must fit) in computation PEs.
    pub floor_pes: u64,
    /// Resident weight state (weights + grads + optimizer) per PE, bytes.
    pub weight_bytes_per_pe: f64,
    /// Resident activations per PE, bytes.
    pub act_bytes_per_pe: f64,
    /// Configuration memory per PE, bytes.
    pub config_bytes_per_pe: f64,
    /// Memory-pressure efficiency factor applied at runtime (`0..=1`).
    pub memory_efficiency: f64,
}

impl CompiledKernel {
    /// Total PEs (computation + transmission) of the kernel region.
    #[must_use]
    pub fn total_pes(&self) -> u64 {
        self.comp_pes + self.trans_pes
    }

    /// Total per-PE memory footprint, bytes.
    #[must_use]
    pub fn bytes_per_pe(&self, params: &WseCompilerParams) -> f64 {
        self.config_bytes_per_pe
            + self.weight_bytes_per_pe
            + self.act_bytes_per_pe
            + params.runtime_reserved_bytes
    }
}

/// Chip-level memory accounting of a compilation (Fig. 9(a) quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseMemoryReport {
    /// Total configuration memory, bytes.
    pub config_bytes: u64,
    /// Total training memory (weight state + activations), bytes.
    pub training_bytes: u64,
    /// Chip SRAM capacity, bytes.
    pub capacity_bytes: u64,
    /// Worst per-PE footprint across kernels, bytes.
    pub worst_pe_bytes: f64,
    /// Per-PE SRAM capacity, bytes.
    pub per_pe_capacity_bytes: u64,
}

impl WseMemoryReport {
    /// Configuration share of total SRAM (`0..=1`).
    #[must_use]
    pub fn config_fraction(&self) -> f64 {
        self.config_bytes as f64 / self.capacity_bytes as f64
    }

    /// Training-memory share of total SRAM (`0..=1`).
    #[must_use]
    pub fn training_fraction(&self) -> f64 {
        self.training_bytes as f64 / self.capacity_bytes as f64
    }

    /// Combined share of total SRAM.
    #[must_use]
    pub fn total_fraction(&self) -> f64 {
        self.config_fraction() + self.training_fraction()
    }
}

/// Outcome of compiling a workload for the WSE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseCompilation {
    /// Compiled kernels, in pipeline order.
    pub kernels: Vec<CompiledKernel>,
    /// Physical placement of the kernel regions.
    pub placement: Placement,
    /// PE budget the compilation targeted (usable fraction × grid, or the
    /// replica slice).
    pub budget_pes: u64,
    /// Total PEs on the chip (denominator of Eq. 1).
    pub chip_pes: u64,
    /// Memory accounting.
    pub memory: WseMemoryReport,
}

impl WseCompilation {
    /// Total allocated PEs (computation + transmission).
    #[must_use]
    pub fn allocated_pes(&self) -> u64 {
        self.kernels.iter().map(CompiledKernel::total_pes).sum()
    }

    /// Total computation PEs.
    #[must_use]
    pub fn computation_pes(&self) -> u64 {
        self.kernels.iter().map(|k| k.comp_pes).sum()
    }

    /// Total transmission PEs.
    #[must_use]
    pub fn transmission_pes(&self) -> u64 {
        self.kernels.iter().map(|k| k.trans_pes).sum()
    }

    /// Eq. 1 allocation ratio over the whole chip.
    #[must_use]
    pub fn allocation_ratio(&self) -> f64 {
        self.allocated_pes() as f64 / self.chip_pes as f64
    }

    /// The compiled kernel of a given kind, if present.
    #[must_use]
    pub fn kernel(&self, kind: KernelKind) -> Option<&CompiledKernel> {
        self.kernels.iter().find(|k| k.kernel.kind == kind)
    }
}

fn weight_state_bytes(params: u64, precision: Precision) -> f64 {
    // Working weights + gradients at workload precision, FP32 Adam moments.
    (params as f64) * (2.0 * precision.bytes_per_element() as f64 + 8.0)
}

/// Everything about a compilation that does not depend on the PE budget:
/// the kernel list, per-kernel caps/floors/names and the per-kernel memory
/// constants. Computed once per [`compile`] call and reused across the
/// budget-shrink retry attempts, which otherwise re-derived the kernel list
/// (an `step_ops` walk plus an O(ops × kernels) match) from scratch on
/// every shrink step.
struct CompilePlan {
    kernels: Vec<Kernel>,
    names: Vec<String>,
    caps: Vec<u64>,
    floors: Vec<u64>,
    floor_total: u64,
    /// `weight_state_bytes(k.params, precision)` per kernel.
    weight_state: Vec<f64>,
    /// `k.stored_act_elems / batch * elem` per kernel.
    act_per_item: Vec<f64>,
    config_per_pe: f64,
}

fn plan_of(params: &WseCompilerParams, workload: &TrainingWorkload) -> CompilePlan {
    let kernels = kernels_of(workload);
    let n_kernels = kernels.len() as f64;
    let precision = workload.precision();
    let batch = workload.batch_size() as f64;
    let elem = precision.bytes_per_element() as f64;

    let names: Vec<String> = kernels.iter().map(Kernel::name).collect();
    let caps: Vec<u64> = kernels.iter().map(|k| cap_pes(k, params)).collect();
    let floors: Vec<u64> = kernels
        .iter()
        .map(|k| floor_pes(k, params, precision))
        .collect();
    let floor_total: u64 = floors.iter().sum();
    let weight_state: Vec<f64> = kernels
        .iter()
        .map(|k| weight_state_bytes(k.params, precision))
        .collect();
    let act_per_item: Vec<f64> = kernels
        .iter()
        .map(|k| k.stored_act_elems as f64 / batch * elem)
        .collect();
    let config_per_pe =
        params.config_base_bytes + params.config_quadratic_bytes * n_kernels * n_kernels;

    CompilePlan {
        kernels,
        names,
        caps,
        floors,
        floor_total,
        weight_state,
        act_per_item,
        config_per_pe,
    }
}

fn cap_pes(k: &Kernel, p: &WseCompilerParams) -> u64 {
    let flops_cap = k.flops_per_token / p.gemm_flops_per_token_per_pe;
    let cap = match k.kind {
        KernelKind::Embedding => (k.params as f64 / p.params_per_pe).max(flops_cap),
        _ => flops_cap,
    };
    (cap.ceil() as u64).max(p.min_pes_per_kernel)
}

fn floor_pes(k: &Kernel, p: &WseCompilerParams, precision: Precision) -> u64 {
    let weight_floor = weight_state_bytes(k.params, precision) / p.weight_bytes_per_pe_budget;
    (weight_floor.ceil() as u64).max(p.min_pes_per_kernel)
}

/// Compile `workload` onto a WSE, optionally restricted to `budget_pes`
/// (used by data-parallel replica slices).
///
/// # Errors
///
/// - [`PlatformError::OutOfMemory`] when any kernel's per-PE footprint
///   exceeds the 48 KB SRAM (the paper's 78-layer failure);
/// - [`PlatformError::CompileFailure`] when the weight floors alone exceed
///   the PE budget (the model needs weight streaming).
pub fn compile(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
    budget_pes: Option<u64>,
) -> Result<WseCompilation, PlatformError> {
    use dabench_core::obs;
    obs::span(obs::Phase::Compile, "wse.compile", || {
        let default_budget = (params.usable_grid_fraction * spec.pe_count() as f64).floor() as u64;
        let mut budget = budget_pes.unwrap_or(default_budget).min(default_budget);
        let plan = plan_of(params, workload);
        // Placement can fail on strip-width rounding when the grid is nearly
        // full; the compiler retries with a slightly smaller budget, which is
        // also what produces the small allocation jitter of Table I's plateau.
        let mut last_err = None;
        for attempt in 0..8 {
            match compile_with_plan(spec, params, &plan, budget) {
                Err(PlatformError::CompileFailure(msg)) if msg.contains("grid width") => {
                    last_err = Some(PlatformError::CompileFailure(msg));
                    budget = (budget as f64 * 0.98) as u64;
                }
                other => {
                    if let Ok(c) = &other {
                        obs::counter("wse.budget_retries", attempt as f64);
                        obs::counter("wse.kernels", c.kernels.len() as f64);
                        obs::counter("wse.allocated_pes", c.allocated_pes() as f64);
                        obs::counter("wse.chip_pes", c.chip_pes as f64);
                    }
                    return other;
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            PlatformError::CompileFailure("placement failed at every budget".to_owned())
        }))
    })
}

fn compile_with_plan(
    spec: &WseSpec,
    params: &WseCompilerParams,
    plan: &CompilePlan,
    budget: u64,
) -> Result<WseCompilation, PlatformError> {
    let CompilePlan {
        kernels,
        names,
        caps,
        floors,
        floor_total,
        weight_state,
        act_per_item,
        config_per_pe,
    } = plan;
    let (floor_total, config_per_pe) = (*floor_total, *config_per_pe);
    // The budget covers computation + transmission PEs.
    let comp_budget = budget as f64 / (1.0 + params.transmission_ratio);

    if (floor_total as f64) > comp_budget {
        return Err(PlatformError::CompileFailure(format!(
            "weight floors need {floor_total} computation PEs, budget is {comp_budget:.0}; \
             use weight streaming for this model"
        )));
    }

    // Water-fill: scale elastic kernels down uniformly until the budget
    // holds, pinning kernels at their floors as they hit them.
    let mut pinned = vec![false; kernels.len()];
    let mut alloc: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    for _ in 0..kernels.len() + 2 {
        let pinned_total: f64 = alloc
            .iter()
            .zip(&pinned)
            .filter(|&(_, &p)| p)
            .map(|(a, _)| *a)
            .sum();
        let free_cap_total: f64 = caps
            .iter()
            .zip(&pinned)
            .filter(|&(_, &p)| !p)
            .map(|(&c, _)| c as f64)
            .sum();
        if free_cap_total <= 0.0 {
            break;
        }
        let scale = ((comp_budget - pinned_total) / free_cap_total).min(1.0);
        let mut newly_pinned = false;
        for i in 0..kernels.len() {
            if pinned[i] {
                continue;
            }
            let want = caps[i] as f64 * scale;
            if want <= floors[i] as f64 {
                alloc[i] = floors[i] as f64;
                pinned[i] = true;
                newly_pinned = true;
            } else {
                alloc[i] = want;
            }
        }
        if !newly_pinned {
            break;
        }
    }

    let comp: Vec<u64> = alloc.iter().map(|a| a.round().max(1.0) as u64).collect();
    let trans: Vec<u64> = comp
        .iter()
        .map(|&c| (c as f64 * params.transmission_ratio).round() as u64)
        .collect();

    // Placement: full-height strips in pipeline order. Names are borrowed
    // from the plan — no per-attempt String clones.
    let regions: Vec<(&str, u64)> = names
        .iter()
        .zip(comp.iter().zip(&trans))
        .map(|(name, (&c, &t))| (name.as_str(), c + t))
        .collect();
    let placement = dabench_core::obs::span(dabench_core::obs::Phase::Place, "wse.place", || {
        Placement::strips(&regions, spec.grid_rows, spec.grid_cols)
    })
    .ok_or_else(|| PlatformError::CompileFailure("kernel strips exceed grid width".to_owned()))?;

    // Per-PE memory layout and pressure factors.
    let sram = spec.sram_per_pe_bytes as f64;

    let mut compiled = Vec::with_capacity(kernels.len());
    let mut worst_pe_bytes = 0.0f64;
    let mut total_training = 0.0f64;
    for (i, k) in kernels.iter().enumerate() {
        let c = comp[i] as f64;
        let weight_per_pe = weight_state[i] / c;
        let act_per_pe = act_per_item[i] * params.activation_residency_factor / c;
        let total = config_per_pe + weight_per_pe + act_per_pe + params.runtime_reserved_bytes;
        worst_pe_bytes = worst_pe_bytes.max(total);
        total_training += (weight_per_pe + act_per_pe) * c;
        let free = sram - total;
        let memory_efficiency =
            (free / params.comfort_working_bytes).clamp(params.min_memory_efficiency, 1.0);
        compiled.push(CompiledKernel {
            kernel: k.clone(),
            comp_pes: comp[i],
            trans_pes: trans[i],
            cap_pes: caps[i],
            floor_pes: floors[i],
            weight_bytes_per_pe: weight_per_pe,
            act_bytes_per_pe: act_per_pe,
            config_bytes_per_pe: config_per_pe,
            memory_efficiency,
        });
    }

    if worst_pe_bytes > sram {
        return Err(PlatformError::OutOfMemory {
            level: "pe-sram".to_owned(),
            required_bytes: worst_pe_bytes.ceil() as u64,
            capacity_bytes: spec.sram_per_pe_bytes,
        });
    }

    let allocated: u64 = comp.iter().zip(&trans).map(|(&c, &t)| c + t).sum();
    let memory = WseMemoryReport {
        config_bytes: (config_per_pe * allocated as f64) as u64,
        training_bytes: total_training as u64,
        capacity_bytes: spec.total_sram_bytes(),
        worst_pe_bytes,
        per_pe_capacity_bytes: spec.sram_per_pe_bytes,
    };

    Ok(WseCompilation {
        kernels: compiled,
        placement,
        budget_pes: budget,
        chip_pes: spec.pe_count(),
        memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::ModelConfig;

    fn workload(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            256,
            1024,
            Precision::Fp16,
        )
    }

    fn compile_l(layers: u64) -> Result<WseCompilation, PlatformError> {
        compile(
            &WseSpec::cs2(),
            &WseCompilerParams::default(),
            &workload(layers),
            None,
        )
    }

    #[test]
    fn allocation_rises_with_layers() {
        let u1 = compile_l(1).unwrap().allocation_ratio();
        let u6 = compile_l(6).unwrap().allocation_ratio();
        let u12 = compile_l(12).unwrap().allocation_ratio();
        assert!(u1 < u6 && u6 < u12, "{u1} {u6} {u12}");
        // Paper Table I bands: 33%, 60%, 85% (±6 points of slack).
        assert!((0.27..0.40).contains(&u1), "{u1}");
        assert!((0.52..0.68).contains(&u6), "{u6}");
        assert!((0.78..0.93).contains(&u12), "{u12}");
    }

    #[test]
    fn allocation_plateaus_at_92_93() {
        for l in [36, 48, 60, 72] {
            let u = compile_l(l).unwrap().allocation_ratio();
            // Paper plateau is 92-93%; placement-retry jitter widens ours
            // to 87-93%.
            assert!((0.86..0.94).contains(&u), "L={l}: {u}");
        }
    }

    #[test]
    fn compile_fails_at_78_layers() {
        assert!(compile_l(72).is_ok());
        let err = compile_l(78).unwrap_err();
        assert!(
            matches!(err, PlatformError::OutOfMemory { .. }),
            "expected OOM, got {err}"
        );
    }

    #[test]
    fn per_attention_kernel_pes_stable_below_12_layers() {
        // Fig. 6: below the saturation point every attention kernel sits at
        // its scalability cap.
        let pes: Vec<u64> = [2u64, 6, 10]
            .iter()
            .map(|&l| {
                compile_l(l)
                    .unwrap()
                    .kernel(KernelKind::Attention { layer: 0 })
                    .unwrap()
                    .comp_pes
            })
            .collect();
        assert_eq!(pes[0], pes[1]);
        assert_eq!(pes[1], pes[2]);
    }

    #[test]
    fn per_attention_kernel_pes_shrink_beyond_saturation() {
        let small = compile_l(12)
            .unwrap()
            .kernel(KernelKind::Attention { layer: 0 })
            .unwrap()
            .comp_pes;
        let big = compile_l(48)
            .unwrap()
            .kernel(KernelKind::Attention { layer: 0 })
            .unwrap()
            .comp_pes;
        assert!(big < small, "{big} !< {small}");
    }

    #[test]
    fn transmission_tracks_computation() {
        let c = compile_l(24).unwrap();
        let ratio = c.transmission_pes() as f64 / c.computation_pes() as f64;
        assert!((ratio - 0.55).abs() < 0.02, "{ratio}");
    }

    #[test]
    fn config_memory_grows_superlinearly() {
        let c12 = compile_l(12).unwrap().memory.config_fraction();
        let c36 = compile_l(36).unwrap().memory.config_fraction();
        let c72 = compile_l(72).unwrap().memory.config_fraction();
        assert!(c36 > c12);
        // Sharp growth: 36→72 gains far more than 12→36.
        assert!(c72 - c36 > c36 - c12);
    }

    #[test]
    fn embedding_pinned_by_weights_at_depth() {
        let c = compile_l(60).unwrap();
        let emb = c.kernel(KernelKind::Embedding).unwrap();
        assert_eq!(emb.comp_pes, emb.floor_pes);
    }

    #[test]
    fn replica_budget_shrinks_allocation() {
        let spec = WseSpec::cs2();
        let full = compile_l(6).unwrap().allocated_pes();
        let half = compile(
            &spec,
            &WseCompilerParams::default(),
            &workload(6),
            Some(spec.pe_count() / 4),
        )
        .unwrap()
        .allocated_pes();
        assert!(half < full);
        // Per-kernel rounding can spill a handful of PEs past the budget.
        assert!(
            half as f64 <= spec.pe_count() as f64 / 4.0 * 1.001,
            "{half}"
        );
    }

    #[test]
    fn memory_efficiency_degrades_with_depth() {
        let shallow = compile_l(24).unwrap();
        let deep = compile_l(66).unwrap();
        let f = |c: &WseCompilation| {
            c.kernel(KernelKind::Attention { layer: 0 })
                .unwrap()
                .memory_efficiency
        };
        assert!(f(&deep) < f(&shallow));
    }
}
