//! Kernel extraction: layer-granular grouping of the training graph.
//!
//! Per Sec. III-A of the paper, the Cerebras compiler maps the model at
//! layer granularity: every decoder layer becomes kernels on the chip (we
//! model one attention kernel and one FFN kernel per layer, matching the
//! paper's references to per-layer "attention kernels"), plus dedicated
//! kernels for the embedding, the LM head (with final norm) and the loss.
//! Forward and backward of the same layer share the kernel's PE region;
//! optimizer work is distributed onto the kernels that own the weights.

use dabench_core::compile::training_graph;
use dabench_graph::NodeRef;
use dabench_model::ops::{OpClass, Phase};
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What part of the model a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Token + positional embedding.
    Embedding,
    /// Attention sub-block of one decoder layer (incl. its norm and
    /// residual).
    Attention {
        /// Decoder layer index.
        layer: u64,
    },
    /// MLP sub-block of one decoder layer (incl. its norm and residual).
    Ffn {
        /// Decoder layer index.
        layer: u64,
    },
    /// Final norm + LM head projection.
    LmHead,
    /// Softmax/cross-entropy loss.
    Loss,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelKind::Embedding => write!(f, "embedding"),
            KernelKind::Attention { layer } => write!(f, "l{layer}.attention"),
            KernelKind::Ffn { layer } => write!(f, "l{layer}.ffn"),
            KernelKind::LmHead => write!(f, "lm_head"),
            KernelKind::Loss => write!(f, "loss"),
        }
    }
}

/// A kernel: a chip-resident group of operators with aggregate costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel identity.
    pub kind: KernelKind,
    /// Total FLOPs per training step (fwd + bwd + its share of the
    /// optimizer).
    pub flops: f64,
    /// FLOPs per token, used for elastic PE sizing.
    pub flops_per_token: f64,
    /// Weight parameters resident in the kernel's PE region.
    pub params: u64,
    /// Forward activation elements the kernel must keep for backward.
    pub stored_act_elems: u64,
}

impl Kernel {
    /// Kernel display name.
    #[must_use]
    pub fn name(&self) -> String {
        self.kind.to_string()
    }

    /// Whether this kernel belongs to decoder layer `layer`.
    #[must_use]
    pub fn is_layer(&self, layer: u64) -> bool {
        matches!(
            self.kind,
            KernelKind::Attention { layer: l } | KernelKind::Ffn { layer: l } if l == layer
        )
    }
}

fn kind_of(op: NodeRef<'_>) -> Option<KernelKind> {
    match op.class() {
        OpClass::Embedding => Some(KernelKind::Embedding),
        OpClass::LmHead => Some(KernelKind::LmHead),
        OpClass::Loss => Some(KernelKind::Loss),
        OpClass::OptimizerStep => None,
        OpClass::Norm if op.layer().is_none() => Some(KernelKind::LmHead), // final norm
        _ => {
            let layer = op.layer()?;
            // norm1 + attention + residual1 → attention kernel;
            // norm2 + MLP + residual2 → FFN kernel. Name checks resolve
            // through the graph's interner — no allocation.
            if op.class().is_attention()
                || op.name().contains(".norm1.")
                || op.name().contains(".residual1.")
            {
                Some(KernelKind::Attention { layer })
            } else {
                Some(KernelKind::Ffn { layer })
            }
        }
    }
}

/// Extract the kernel list of a workload, in pipeline order.
///
/// # Example
///
/// ```
/// use dabench_model::{ModelConfig, Precision, TrainingWorkload};
/// use dabench_wse::kernels_of;
///
/// let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 3), 4, 256, Precision::Fp16);
/// let ks = kernels_of(&w);
/// // embedding + 3 × (attention + ffn) + lm_head + loss
/// assert_eq!(ks.len(), 1 + 3 * 2 + 1 + 1);
/// ```
#[must_use]
pub fn kernels_of(workload: &TrainingWorkload) -> Vec<Kernel> {
    let graph = training_graph(workload);
    let tokens = workload.tokens_per_step() as f64;
    let model = workload.model();

    let mut order: Vec<KernelKind> = vec![KernelKind::Embedding];
    for l in 0..model.num_layers {
        order.push(KernelKind::Attention { layer: l });
        order.push(KernelKind::Ffn { layer: l });
    }
    order.push(KernelKind::LmHead);
    order.push(KernelKind::Loss);

    let mut kernels: Vec<Kernel> = order
        .into_iter()
        .map(|kind| Kernel {
            kind,
            flops: 0.0,
            flops_per_token: 0.0,
            params: 0,
            stored_act_elems: 0,
        })
        .collect();

    // Graph node order equals the op-catalogue order, so every per-kernel
    // float accumulation below is bitwise identical to the legacy
    // `step_ops()` walk.
    let mut optimizer_flops = 0.0;
    for (_, op) in graph.iter() {
        match kind_of(op) {
            Some(kind) => {
                let k = kernels
                    .iter_mut()
                    .find(|k| k.kind == kind)
                    .expect("kernel order covers all kinds");
                k.flops += op.flops();
                if op.phase() == Phase::Forward {
                    k.params += op.params();
                    k.stored_act_elems += op.out_elems();
                }
            }
            None => optimizer_flops += op.flops(),
        }
    }

    // Distribute optimizer FLOPs onto weight-owning kernels, in proportion
    // to their parameters (the update runs in place on the owning PEs).
    let total_params: u64 = kernels.iter().map(|k| k.params).sum();
    if total_params > 0 {
        for k in &mut kernels {
            k.flops += optimizer_flops * k.params as f64 / total_params as f64;
        }
    }
    for k in &mut kernels {
        k.flops_per_token = k.flops / tokens;
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            8,
            1024,
            Precision::Fp16,
        )
    }

    #[test]
    fn kernel_count_is_2l_plus_3() {
        assert_eq!(kernels_of(&w(12)).len(), 27);
    }

    #[test]
    fn kernels_cover_all_flops() {
        let work = w(6);
        let total: f64 = kernels_of(&work).iter().map(|k| k.flops).sum();
        let expect = work.training_flops_per_step();
        assert!((total - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn kernels_cover_all_params() {
        let work = w(6);
        let total: u64 = kernels_of(&work).iter().map(|k| k.params).sum();
        assert_eq!(total, work.model().parameter_count());
    }

    #[test]
    fn lm_head_outweighs_a_layer_at_hs768() {
        let ks = kernels_of(&w(12));
        let head = ks.iter().find(|k| k.kind == KernelKind::LmHead).unwrap();
        let attn = ks
            .iter()
            .find(|k| k.kind == (KernelKind::Attention { layer: 0 }))
            .unwrap();
        let ffn = ks
            .iter()
            .find(|k| k.kind == (KernelKind::Ffn { layer: 0 }))
            .unwrap();
        assert!(head.flops > attn.flops + ffn.flops);
    }

    #[test]
    fn layer_kernels_are_identical_across_layers() {
        let ks = kernels_of(&w(4));
        let a0 = ks
            .iter()
            .find(|k| k.kind == (KernelKind::Attention { layer: 0 }))
            .unwrap();
        let a3 = ks
            .iter()
            .find(|k| k.kind == (KernelKind::Attention { layer: 3 }))
            .unwrap();
        assert!((a0.flops - a3.flops).abs() < 1e-6);
        assert_eq!(a0.params, a3.params);
    }

    #[test]
    fn is_layer_matches() {
        let ks = kernels_of(&w(2));
        let l1: Vec<_> = ks.iter().filter(|k| k.is_layer(1)).collect();
        assert_eq!(l1.len(), 2);
    }

    #[test]
    fn flops_per_token_consistent() {
        let work = w(2);
        for k in kernels_of(&work) {
            let expect = k.flops / work.tokens_per_step() as f64;
            assert!((k.flops_per_token - expect).abs() < 1e-9);
        }
    }
}
