//! [`Platform`] and [`Scalable`] implementations for the WSE model.

use crate::compile::compile;
use crate::runtime::execute;
use crate::scale::{data_parallel, weight_streaming};
use crate::Wse;
use dabench_core::{
    ChipProfile, ComputeUnitSpec, HardwareSpec, Memoizable, MemoryLevelSpec, MemoryLevelUsage,
    MemoryScope, ParallelStrategy, Platform, PlatformError, Scalable, ScalingProfile,
};
use dabench_model::TrainingWorkload;

impl Platform for Wse {
    fn name(&self) -> &str {
        "cerebras-wse2"
    }

    fn spec(&self) -> HardwareSpec {
        let s = self.wse_spec();
        HardwareSpec {
            name: "Cerebras WSE-2".to_owned(),
            compute_units: vec![ComputeUnitSpec {
                kind: "pe".to_owned(),
                count: s.pe_count(),
            }],
            peak_tflops: s.peak_tflops(),
            memory_levels: vec![MemoryLevelSpec {
                // The WSE uses its distributed SRAM as both shared and
                // global memory (unified model, Sec. V-C of the paper).
                name: "pe-sram".to_owned(),
                scope: MemoryScope::OnChip,
                capacity_bytes: s.total_sram_bytes(),
                bandwidth_bytes_per_s: Some(s.mem_bw_bytes_per_s),
            }],
        }
    }

    fn profile(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
        let compilation = compile(self.wse_spec(), self.compiler_params(), workload, None)?;
        let exec = execute(
            self.wse_spec(),
            self.compiler_params(),
            &compilation,
            workload,
        );
        Ok(ChipProfile {
            unit_usage: vec![(
                "pe".to_owned(),
                compilation.allocated_pes(),
                compilation.chip_pes,
            )],
            tasks: exec.task_profiles.clone(),
            sections: vec![],
            memory: vec![MemoryLevelUsage {
                name: "pe-sram".to_owned(),
                used_bytes: compilation.memory.config_bytes + compilation.memory.training_bytes,
                capacity_bytes: compilation.memory.capacity_bytes,
            }],
            achieved_tflops: exec.achieved_tflops,
            throughput_tokens_per_s: exec.throughput_tokens_per_s,
            step_time_s: exec.step_time_s,
        })
    }
}

impl Memoizable for Wse {
    fn cache_token(&self) -> String {
        crate::cache_token_of(self.wse_spec(), self.compiler_params())
    }

    fn cache_key(&self) -> dabench_core::CacheKey {
        self.cache_key
    }
}

impl Scalable for Wse {
    fn scale(
        &self,
        workload: &TrainingWorkload,
        strategy: ParallelStrategy,
    ) -> Result<ScalingProfile, PlatformError> {
        match strategy {
            ParallelStrategy::DataParallel { replicas } => {
                let plan =
                    data_parallel(self.wse_spec(), self.compiler_params(), workload, replicas)?;
                Ok(ScalingProfile {
                    strategy,
                    throughput_tokens_per_s: plan.net_tokens_per_s,
                    communication_fraction: plan.communication_fraction,
                    per_unit_allocation: vec![(
                        "pe".to_owned(),
                        plan.budget_per_replica as f64 / self.wse_spec().pe_count() as f64,
                    )],
                    detail: vec![
                        (
                            "computation_tokens_per_s".to_owned(),
                            plan.computation_tokens_per_s,
                        ),
                        (
                            "per_replica_tokens_per_s".to_owned(),
                            plan.per_replica_tokens_per_s,
                        ),
                    ],
                })
            }
            ParallelStrategy::WeightStreaming => {
                let run = weight_streaming(self.wse_spec(), self.compiler_params(), workload)?;
                Ok(ScalingProfile {
                    strategy,
                    throughput_tokens_per_s: run.throughput_tokens_per_s,
                    communication_fraction: run.streaming_fraction,
                    per_unit_allocation: vec![("pe".to_owned(), 1.0)],
                    detail: vec![("achieved_tflops".to_owned(), run.achieved_tflops)],
                })
            }
            ParallelStrategy::TensorParallel { .. } | ParallelStrategy::PipelineParallel { .. } => {
                Err(PlatformError::Unsupported(
                    "WSE-2 scales via intra-chip DP and weight streaming only".to_owned(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::tier1;
    use dabench_model::{ModelConfig, Precision};

    fn wse() -> Wse {
        Wse::default()
    }

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            256,
            1024,
            Precision::Fp16,
        )
    }

    #[test]
    fn tier1_report_is_complete() {
        let r = tier1::run(&wse(), &w(24)).unwrap();
        assert!(r.allocation_of("pe").unwrap() > 0.85);
        assert!(r.load_imbalance.unwrap() > 0.9);
        assert!(r.compute_efficiency > 0.1 && r.compute_efficiency < 0.35);
        // Unified on-chip memory → compute-bound for LLM training.
        assert_eq!(r.bound, Some(dabench_core::BoundKind::ComputeBound));
    }

    #[test]
    fn profile_fails_oom_at_78_layers() {
        let err = wse().profile(&w(78)).unwrap_err();
        assert!(matches!(err, PlatformError::OutOfMemory { .. }));
    }

    #[test]
    fn scale_rejects_tensor_parallel() {
        let err = wse()
            .scale(&w(12), ParallelStrategy::TensorParallel { degree: 2 })
            .unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }

    #[test]
    fn scale_weight_streaming_works() {
        let p = wse()
            .scale(&w(12), ParallelStrategy::WeightStreaming)
            .unwrap();
        assert!(p.throughput_tokens_per_s > 0.0);
    }

    #[test]
    fn spec_reports_unified_memory() {
        let s = wse().spec();
        assert_eq!(s.memory_levels.len(), 1);
        assert_eq!(s.unit_count("pe"), 850_000);
    }
}
