//! WSE serving model: weights and KV cache resident in wafer SRAM.
//!
//! The CS-2 serves inference out of its 40 GB of PE-local SRAM at the full
//! 20 PB/s aggregate memory bandwidth, so decode — memory-bound on every
//! other platform — runs close to the compute roofline here. The flip side
//! is capacity: weights + KV cache must fit in SRAM, so batch and context
//! hit a hard wall long before a DDR-backed machine would.

use crate::chip::{WseCompilerParams, WseSpec};
use dabench_core::{max_admissible_batch, AdmissionProbe, InferModel};
use dabench_model::InferenceWorkload;

/// Per-kernel-launch overhead of the spatial pipeline: once configured,
/// tokens stream through the fabric with no host round-trip, so the
/// per-step cost is a fabric reconfiguration, not a kernel launch.
const STEP_OVERHEAD_S: f64 = 1.0e-6;

/// Build the serving model of a wafer-scale engine.
#[must_use]
pub fn infer_model(spec: &WseSpec, params: &WseCompilerParams) -> InferModel {
    InferModel {
        platform: "wse".into(),
        peak_tflops: spec.peak_tflops(),
        sustained_efficiency: params.sustained_gemm_efficiency,
        mem_bw_bytes_per_s: spec.mem_bw_bytes_per_s,
        kv_level: "pe-sram".into(),
        kv_capacity_bytes: spec.total_sram_bytes(),
        step_overhead_s: STEP_OVERHEAD_S,
    }
}

/// Probe the wafer's SRAM admission wall for `workload`'s shape: the
/// largest batch in `1..=limit` whose weights + KV cache fit PE SRAM.
#[must_use]
pub fn admission_probe(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &InferenceWorkload,
    limit: u64,
) -> AdmissionProbe {
    let model = infer_model(spec, params);
    max_admissible_batch(workload, limit, |_| model.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::{profile_inference, BoundKind, PlatformError};
    use dabench_model::{InferenceWorkload, ModelConfig, Precision};

    fn w(batch: u64) -> InferenceWorkload {
        InferenceWorkload::new(ModelConfig::llama2_7b(), batch, 512, 128, Precision::Fp16).unwrap()
    }

    #[test]
    fn sram_bandwidth_makes_decode_compute_bound() {
        // 20 PB/s puts the ridge at ~0.08 FLOP/B — far below decode's
        // per-batch intensity, unlike every DDR/HBM-backed platform.
        let m = infer_model(&WseSpec::cs2(), &WseCompilerParams::default());
        let r = profile_inference(&m, &w(8)).unwrap();
        assert_eq!(r.decode_bound, BoundKind::ComputeBound);
    }

    #[test]
    fn sram_capacity_is_the_batch_wall() {
        let m = infer_model(&WseSpec::cs2(), &WseCompilerParams::default());
        assert!(profile_inference(&m, &w(8)).is_ok());
        let err = profile_inference(&m, &w(128)).unwrap_err();
        assert!(
            matches!(err, PlatformError::OutOfMemory { ref level, .. } if level == "pe-sram"),
            "{err}"
        );
    }

    #[test]
    fn fp8_kv_extends_the_batch_wall() {
        let m = infer_model(&WseSpec::cs2(), &WseCompilerParams::default());
        // Find a batch that overflows at fp16 KV but fits at fp8.
        let w16 = w(96);
        assert!(profile_inference(&m, &w16).is_err());
        let w8 = w16.with_kv_precision(Precision::Fp8);
        assert!(profile_inference(&m, &w8).is_ok());
    }
}
