//! # dabench-wse
//!
//! A performance model of the Cerebras CS-2 / WSE-2 wafer-scale dataflow
//! accelerator, faithful to the execution strategy described in Sec. III-A
//! of the DABench-LLM paper:
//!
//! - the **whole** computation graph is mapped onto the chip at once, at
//!   layer granularity (one attention kernel and one FFN kernel per decoder
//!   layer, plus embedding / LM-head / loss kernels);
//! - every kernel receives an **elastic allocation** of processing
//!   elements, capped by its own scalability limit (communication overhead
//!   makes PEs beyond the cap useless);
//! - kernels are **placed** as rectangles on the PE grid by a shelf packer;
//!   placement fragmentation and routing ("transmission") PEs are modelled
//!   explicitly;
//! - each PE owns 48 KB of SRAM holding configuration data (growing with
//!   graph size), weights, gradients, optimizer state and activations —
//!   overflowing it is a compile failure, the paper's observed behaviour at
//!   78 decoder layers;
//! - execution is a spatial pipeline over the batch, so throughput
//!   saturates with batch size (Fig. 12).
//!
//! # Example
//!
//! ```
//! use dabench_core::tier1;
//! use dabench_model::{ModelConfig, Precision, TrainingWorkload};
//! use dabench_wse::Wse;
//!
//! let wse = Wse::default();
//! let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 24), 256, 1024, Precision::Fp16);
//! let report = tier1::run(&wse, &w).unwrap();
//! // Deep models reach the paper's 91-93% allocation plateau.
//! assert!(report.allocation_of("pe").unwrap() > 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod compile;
mod degrade;
mod infer;
mod kernel;
mod placement;
mod platform_impl;
mod runtime;
mod scale;
mod streaming;

pub use chip::{WseCompilerParams, WseSpec};
pub use compile::{compile, CompiledKernel, WseCompilation, WseMemoryReport};
pub use degrade::compile_degraded;
pub use infer::{admission_probe, infer_model};
pub use kernel::{kernels_of, Kernel, KernelKind};
pub use placement::{healthy_runs, PlacedRect, Placement};
pub use runtime::{execute, WseExecution};
pub use scale::{data_parallel, weight_streaming, ReplicaPlan, WeightStreamingRun};
pub use streaming::{streaming_schedule, try_streaming_schedule, StreamedLayer, StreamingSchedule};

/// The Cerebras WSE-2 platform model.
///
/// Construct with [`Wse::default`] for the data-sheet configuration, or
/// [`Wse::new`] to probe hypothetical chips.
#[derive(Debug, Clone)]
pub struct Wse {
    spec: WseSpec,
    params: WseCompilerParams,
    // Precomputed at construction so memo-cache lookups allocate nothing
    // (see `Memoizable::cache_key` and docs/benchmarking.md).
    cache_key: dabench_core::CacheKey,
}

impl Default for Wse {
    fn default() -> Self {
        Self::new(WseSpec::default(), WseCompilerParams::default())
    }
}

pub(crate) fn cache_token_of(spec: &WseSpec, params: &WseCompilerParams) -> String {
    format!("wse|{spec:?}|{params:?}")
}

impl Wse {
    /// Create a WSE model with explicit hardware and compiler parameters.
    #[must_use]
    pub fn new(spec: WseSpec, params: WseCompilerParams) -> Self {
        let cache_key = dabench_core::CacheKey::of_token(&cache_token_of(&spec, &params));
        Self {
            spec,
            params,
            cache_key,
        }
    }

    /// Hardware description in use.
    #[must_use]
    pub fn wse_spec(&self) -> &WseSpec {
        &self.spec
    }

    /// Compiler parameters in use.
    #[must_use]
    pub fn compiler_params(&self) -> &WseCompilerParams {
        &self.params
    }
}
