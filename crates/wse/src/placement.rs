//! Kernel placement on the PE grid.
//!
//! The modelled placer follows the Cerebras pipeline layout: kernels are
//! placed as full-height vertical strips, left to right in dataflow order,
//! so that data streams across the wafer and kernels with data dependencies
//! are physically adjacent (Sec. III-A: "kernels with data dependencies are
//! placed physically close to each other").

use serde::{Deserialize, Serialize};

/// One placed kernel region: a full-height strip of the grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedRect {
    /// Kernel name.
    pub name: String,
    /// First column of the strip.
    pub col: u64,
    /// Strip width in columns.
    pub width: u64,
    /// Strip height in rows (the full usable grid height).
    pub rows: u64,
    /// Logical PEs the kernel actually uses inside the strip.
    pub used_pes: u64,
}

impl PlacedRect {
    /// Grid area of the strip (≥ `used_pes`).
    #[must_use]
    pub fn area(&self) -> u64 {
        self.width * self.rows
    }

    /// PEs lost to column rounding inside this strip.
    #[must_use]
    pub fn padding(&self) -> u64 {
        self.area() - self.used_pes
    }

    /// Horizontal center of the strip (for distance estimates).
    #[must_use]
    pub fn center_col(&self) -> f64 {
        self.col as f64 + self.width as f64 / 2.0
    }
}

/// A complete placement of kernels on the grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Placed strips, in dataflow order.
    pub rects: Vec<PlacedRect>,
    /// Grid rows available to the placer.
    pub grid_rows: u64,
    /// Grid columns available to the placer.
    pub grid_cols: u64,
}

impl Placement {
    /// Place `regions` (name, PE count) as adjacent full-height strips.
    ///
    /// Generic over the name type so the compiler's retry loop can pass
    /// borrowed names from a precomputed plan without cloning a `String`
    /// per kernel per attempt.
    ///
    /// Returns `None` when the strips do not fit horizontally.
    #[must_use]
    pub fn strips<S: AsRef<str>>(
        regions: &[(S, u64)],
        grid_rows: u64,
        grid_cols: u64,
    ) -> Option<Self> {
        assert!(grid_rows > 0 && grid_cols > 0, "grid must be non-empty");
        let mut rects = Vec::with_capacity(regions.len());
        let mut col = 0u64;
        for (name, pes) in regions {
            let width = pes.div_ceil(grid_rows).max(1);
            if col + width > grid_cols {
                return None;
            }
            rects.push(PlacedRect {
                name: name.as_ref().to_owned(),
                col,
                width,
                rows: grid_rows,
                used_pes: *pes,
            });
            col += width;
        }
        Some(Self {
            rects,
            grid_rows,
            grid_cols,
        })
    }

    /// Place `regions` as full-height strips while avoiding dead column
    /// intervals (half-open `[start, end)` ranges of failed fabric
    /// columns).
    ///
    /// Strips are packed first-fit into the healthy column runs left to
    /// right, preserving dataflow order; a strip never straddles a dead
    /// interval, so fragmentation can make an otherwise-fitting layout
    /// fail. Returns `None` when the healthy runs cannot host every strip.
    #[must_use]
    pub fn strips_avoiding<S: AsRef<str>>(
        regions: &[(S, u64)],
        grid_rows: u64,
        grid_cols: u64,
        dead_intervals: &[(u64, u64)],
    ) -> Option<Self> {
        assert!(grid_rows > 0 && grid_cols > 0, "grid must be non-empty");
        let runs = healthy_runs(grid_cols, dead_intervals);
        let mut rects = Vec::with_capacity(regions.len());
        let mut run_idx = 0usize;
        let mut col = runs.first()?.0;
        for (name, pes) in regions {
            let width = pes.div_ceil(grid_rows).max(1);
            // Advance to the first healthy run with enough room left.
            loop {
                let (_, run_end) = *runs.get(run_idx)?;
                if col + width <= run_end {
                    break;
                }
                run_idx += 1;
                col = runs.get(run_idx)?.0;
            }
            rects.push(PlacedRect {
                name: name.as_ref().to_owned(),
                col,
                width,
                rows: grid_rows,
                used_pes: *pes,
            });
            col += width;
        }
        Some(Self {
            rects,
            grid_rows,
            grid_cols,
        })
    }

    /// Whether any strip overlaps a dead column interval.
    #[must_use]
    pub fn overlaps_any(&self, dead_intervals: &[(u64, u64)]) -> bool {
        self.rects.iter().any(|r| {
            dead_intervals
                .iter()
                .any(|&(s, e)| r.col < e && r.col + r.width > s)
        })
    }

    /// Total logical PEs in use.
    #[must_use]
    pub fn used_pes(&self) -> u64 {
        self.rects.iter().map(|r| r.used_pes).sum()
    }

    /// Total grid area consumed (used + padding).
    #[must_use]
    pub fn occupied_area(&self) -> u64 {
        self.rects.iter().map(PlacedRect::area).sum()
    }

    /// PEs lost to rounding/fragmentation.
    #[must_use]
    pub fn fragmentation_pes(&self) -> u64 {
        self.occupied_area() - self.used_pes()
    }

    /// Mean center-to-center distance (in columns) between consecutive
    /// kernels — the dataflow communication distance.
    #[must_use]
    pub fn mean_hop_distance(&self) -> f64 {
        if self.rects.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for pair in self.rects.windows(2) {
            acc += (pair[1].center_col() - pair[0].center_col()).abs();
        }
        acc / (self.rects.len() - 1) as f64
    }
}

/// Merge `dead_intervals` and return the complementary healthy column runs
/// `[start, end)` within a `grid_cols`-wide fabric.
#[must_use]
pub fn healthy_runs(grid_cols: u64, dead_intervals: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut dead: Vec<(u64, u64)> = dead_intervals
        .iter()
        .map(|&(s, e)| (s.min(grid_cols), e.min(grid_cols)))
        .filter(|&(s, e)| s < e)
        .collect();
    dead.sort_unstable();
    let mut runs = Vec::new();
    let mut cursor = 0u64;
    for (s, e) in dead {
        if s > cursor {
            runs.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if cursor < grid_cols {
        runs.push((cursor, grid_cols));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(sizes: &[u64]) -> Vec<(String, u64)> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("k{i}"), s))
            .collect()
    }

    #[test]
    fn strips_fill_left_to_right() {
        let p = Placement::strips(&regions(&[100, 100]), 10, 30).unwrap();
        assert_eq!(p.rects[0].col, 0);
        assert_eq!(p.rects[0].width, 10);
        assert_eq!(p.rects[1].col, 10);
    }

    #[test]
    fn overflow_returns_none() {
        assert!(Placement::strips(&regions(&[200, 200]), 10, 30).is_none());
    }

    #[test]
    fn padding_accounts_rounding() {
        let p = Placement::strips(&regions(&[95]), 10, 30).unwrap();
        assert_eq!(p.rects[0].width, 10);
        assert_eq!(p.fragmentation_pes(), 5);
        assert_eq!(p.used_pes(), 95);
    }

    #[test]
    fn exact_fit_has_no_padding() {
        let p = Placement::strips(&regions(&[100, 50]), 10, 15).unwrap();
        assert_eq!(p.fragmentation_pes(), 0);
        assert_eq!(p.occupied_area(), 150);
    }

    #[test]
    fn hop_distance_grows_with_strip_width() {
        let narrow = Placement::strips(&regions(&[10, 10]), 10, 100).unwrap();
        let wide = Placement::strips(&regions(&[500, 500]), 10, 100).unwrap();
        assert!(wide.mean_hop_distance() > narrow.mean_hop_distance());
    }

    #[test]
    fn single_kernel_distance_zero() {
        let p = Placement::strips(&regions(&[10]), 10, 100).unwrap();
        assert_eq!(p.mean_hop_distance(), 0.0);
    }

    #[test]
    fn healthy_runs_merge_and_clamp() {
        let runs = healthy_runs(100, &[(10, 20), (15, 30), (95, 200)]);
        assert_eq!(runs, vec![(0, 10), (30, 95)]);
        assert_eq!(healthy_runs(100, &[]), vec![(0, 100)]);
    }

    #[test]
    fn avoiding_skips_dead_interval() {
        // Two 100-PE strips (10 cols each) around a dead band at cols 5..12.
        let p = Placement::strips_avoiding(&regions(&[100, 100]), 10, 40, &[(5, 12)]).unwrap();
        assert!(!p.overlaps_any(&[(5, 12)]));
        assert_eq!(p.rects[0].col, 12);
        assert_eq!(p.rects[1].col, 22);
    }

    #[test]
    fn avoiding_uses_leading_run_when_it_fits() {
        let p = Placement::strips_avoiding(&regions(&[30, 100]), 10, 40, &[(5, 12)]).unwrap();
        assert_eq!(p.rects[0].col, 0); // 3 columns fit before the dead band
        assert_eq!(p.rects[1].col, 12);
        assert!(!p.overlaps_any(&[(5, 12)]));
    }

    #[test]
    fn avoiding_fails_when_fragmented() {
        // 20-column strip, but the dead band splits the grid into two
        // 15-column runs.
        assert!(Placement::strips_avoiding(&regions(&[200]), 10, 31, &[(15, 16)]).is_none());
    }

    #[test]
    fn avoiding_without_faults_matches_strips() {
        let plain = Placement::strips(&regions(&[100, 50]), 10, 30).unwrap();
        let avoid = Placement::strips_avoiding(&regions(&[100, 50]), 10, 30, &[]).unwrap();
        assert_eq!(plain, avoid);
    }

    #[test]
    fn fully_dead_grid_places_nothing() {
        assert!(Placement::strips_avoiding(&regions(&[10]), 10, 30, &[(0, 30)]).is_none());
    }
}
