//! WSE scalability modes: intra-chip data parallelism and weight streaming.
//!
//! The WSE-2 scales *within* the wafer (Sec. VI-A.3a of the paper): small
//! models are replicated into grid slices (intra-chip DP, with gradient
//! allreduce over the fabric whose cost grows with replica distance), and
//! models too large for on-chip residence switch to weight-streaming mode
//! (one layer at a time across the whole wafer, weights streamed from
//! external memory).

use crate::chip::{WseCompilerParams, WseSpec};
use crate::compile::compile;
use crate::runtime::{execute, precision_rate_factor};
use dabench_core::PlatformError;
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};

/// Plan and outcome of an intra-chip data-parallel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaPlan {
    /// Number of replicas.
    pub replicas: u32,
    /// PE budget per replica.
    pub budget_per_replica: u64,
    /// Per-replica computation throughput, tokens/second.
    pub per_replica_tokens_per_s: f64,
    /// Aggregate throughput before communication, tokens/second.
    pub computation_tokens_per_s: f64,
    /// Aggregate throughput after gradient allreduce, tokens/second.
    pub net_tokens_per_s: f64,
    /// Fraction of step time spent communicating.
    pub communication_fraction: f64,
}

/// Execute `workload` with `replicas` intra-chip data-parallel copies.
///
/// Each replica compiles into a `1/replicas` slice of the grid; gradients
/// are all-reduced across replicas after every step. With two replicas the
/// placer keeps them adjacent (near-zero distance cost); beyond two, the
/// extra hop distance adds a per-replica penalty (Fig. 11(a)).
///
/// # Errors
///
/// Propagates compile failures (e.g. the model does not fit in a slice).
pub fn data_parallel(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
    replicas: u32,
) -> Result<ReplicaPlan, PlatformError> {
    if replicas == 0 {
        return Err(PlatformError::Unsupported(
            "need at least one replica".to_owned(),
        ));
    }
    let budget =
        (params.usable_grid_fraction * spec.pe_count() as f64 / f64::from(replicas)) as u64;
    let compilation = compile(spec, params, workload, Some(budget))?;
    let exec = execute(spec, params, &compilation, workload);

    let r = f64::from(replicas);
    // Allreduce volume scales as (r-1)/r; placement keeps two replicas
    // adjacent (near-zero distance) but beyond that the mean pairwise
    // distance grows linearly with the replica count.
    let distance_factor = 1.0 + params.dp_distance_penalty * (r - 2.0).max(0.0);
    let comm_fraction = if replicas == 1 {
        0.0
    } else {
        (params.dp_comm_coefficient * (r - 1.0) / r * distance_factor).min(0.95)
    };

    let per_replica = exec.throughput_tokens_per_s;
    let computation = per_replica * r;
    let net = computation * (1.0 - comm_fraction);
    Ok(ReplicaPlan {
        replicas,
        budget_per_replica: budget,
        per_replica_tokens_per_s: per_replica,
        computation_tokens_per_s: computation,
        net_tokens_per_s: net,
        communication_fraction: comm_fraction,
    })
}

/// Outcome of a weight-streaming execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightStreamingRun {
    /// Wall-clock step time, seconds.
    pub step_time_s: f64,
    /// Training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Fraction of step time spent streaming weights.
    pub streaming_fraction: f64,
    /// Achieved compute throughput, TFLOP/s.
    pub achieved_tflops: f64,
}

/// Execute `workload` in weight-streaming mode: layers run serially across
/// the whole wafer while their weights stream in from external memory.
///
/// This mode has no per-kernel residency limit, so arbitrarily deep models
/// run; the cost is the loss of spatial pipelining (lower sustained
/// efficiency) plus the streaming time itself — the paper measures ~20%
/// lower throughput than pipelined mode for GPT-2.
///
/// # Errors
///
/// Currently infallible for positive workloads; returns `Result` for
/// interface symmetry.
pub fn weight_streaming(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
) -> Result<WeightStreamingRun, PlatformError> {
    let rate = precision_rate_factor(workload.precision(), params);
    let usable =
        params.usable_grid_fraction * spec.pe_count() as f64 / (1.0 + params.transmission_ratio);
    let compute_rate = usable * spec.peak_flops_per_pe * params.weight_streaming_efficiency * rate;
    let step_flops = dabench_core::compile::training_graph(workload)
        .summary()
        .total_flops;
    let compute_time = step_flops / compute_rate;

    // Weights stream in once for forward and once for backward.
    let weight_bytes = workload.weight_bytes() as f64;
    let stream_time = 2.0 * weight_bytes / spec.external_bw_bytes_per_s;

    let step_time = compute_time + stream_time;
    Ok(WeightStreamingRun {
        step_time_s: step_time,
        throughput_tokens_per_s: workload.tokens_per_step() as f64 / step_time,
        streaming_fraction: stream_time / step_time,
        achieved_tflops: step_flops / step_time / 1e12,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn spec() -> WseSpec {
        WseSpec::cs2()
    }

    fn params() -> WseCompilerParams {
        WseCompilerParams::default()
    }

    fn small(batch: u64) -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_small(), batch, 1024, Precision::Fp16)
    }

    #[test]
    fn dp2_small_does_not_collapse() {
        // Paper Table III: GPT-2 small 0.66M → 0.98M tokens/s (1.48×). In
        // our model the single-copy run already saturates the chip, so the
        // DP2 gain is weaker (~1×); it must at least not regress (see
        // EXPERIMENTS.md for the recorded deviation).
        let base = data_parallel(&spec(), &params(), &small(256), 1).unwrap();
        let dp2 = data_parallel(&spec(), &params(), &small(256), 2).unwrap();
        let speedup = dp2.net_tokens_per_s / base.net_tokens_per_s;
        assert!((0.9..1.8).contains(&speedup), "{speedup}");
    }

    #[test]
    fn dp_scales_strongly_for_small_models() {
        // The paper's core DP insight: smaller models gain more from
        // replication. gpt2-mini at 4 replicas should be ≥2.5× its own
        // single-copy run.
        let mini = TrainingWorkload::new(ModelConfig::gpt2_mini(), 256, 1024, Precision::Fp16);
        let base = data_parallel(&spec(), &params(), &mini, 1).unwrap();
        let dp4 = data_parallel(&spec(), &params(), &mini, 4).unwrap();
        let speedup = dp4.net_tokens_per_s / base.net_tokens_per_s;
        assert!(speedup > 2.5, "{speedup}");
    }

    #[test]
    fn communication_grows_with_replicas() {
        let r2 = data_parallel(&spec(), &params(), &small(256), 2).unwrap();
        let r4 = data_parallel(
            &spec(),
            &params(),
            &TrainingWorkload::new(ModelConfig::gpt2_mini(), 256, 1024, Precision::Fp16),
            4,
        )
        .unwrap();
        assert!(r4.communication_fraction > r2.communication_fraction);
    }

    #[test]
    fn smaller_models_support_more_replicas() {
        // gpt2-tiny at 8 replicas compiles; the full small model at 8
        // replicas still compiles (it is elastic) but uses less absolute
        // budget per replica.
        let tiny = TrainingWorkload::new(ModelConfig::gpt2_tiny(), 256, 1024, Precision::Fp16);
        let plan = data_parallel(&spec(), &params(), &tiny, 8).unwrap();
        assert!(plan.net_tokens_per_s > 0.0);
        assert_eq!(plan.budget_per_replica, (0.93 * 850_000.0 / 8.0) as u64);
    }

    #[test]
    fn zero_replicas_rejected() {
        let err = data_parallel(&spec(), &params(), &small(32), 0).unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }

    #[test]
    fn weight_streaming_within_20_to_30_percent_of_pipelined() {
        // Paper: 0.66M → 0.53M tokens/s (~20% drop) for GPT-2 small.
        let pipelined = data_parallel(&spec(), &params(), &small(256), 1)
            .unwrap()
            .net_tokens_per_s;
        let ws = weight_streaming(&spec(), &params(), &small(256))
            .unwrap()
            .throughput_tokens_per_s;
        let drop = 1.0 - ws / pipelined;
        assert!((0.05..0.35).contains(&drop), "drop {drop}");
    }

    #[test]
    fn weight_streaming_handles_very_deep_models() {
        // 96 layers does not compile in pipelined mode but streams fine.
        let deep =
            TrainingWorkload::new(ModelConfig::gpt2_probe(768, 96), 256, 1024, Precision::Fp16);
        let run = weight_streaming(&spec(), &params(), &deep).unwrap();
        assert!(run.throughput_tokens_per_s > 0.0);
        assert!(run.streaming_fraction < 0.5);
    }

    #[test]
    fn streaming_fraction_grows_with_model_size() {
        let small_run = weight_streaming(&spec(), &params(), &small(256)).unwrap();
        let big = TrainingWorkload::new(ModelConfig::gpt2_xl(), 256, 1024, Precision::Fp16);
        let big_run = weight_streaming(&spec(), &params(), &big).unwrap();
        assert!(big_run.streaming_fraction > small_run.streaming_fraction);
    }
}
