//! Fault remapping: re-compiling around dead regions of the wafer.
//!
//! Wafer-scale integration ships with defective PEs by design, and more
//! fail in the field; the real toolchain routes around them. The modelled
//! remap mirrors that: a dead rectangle poisons its full columns for strip
//! placement (strips are full-height, so a strip may never straddle a dead
//! band), the PE budget shrinks by the surviving-fabric fraction, and the
//! elastic allocator re-runs followed by a dead-band-avoiding placement.

use crate::chip::{WseCompilerParams, WseSpec};
use crate::compile::{compile, WseCompilation};
use crate::placement::{healthy_runs, Placement};
use crate::runtime::execute;
use crate::Wse;
use dabench_core::{
    ChipProfile, Degradable, DegradedProfile, FaultKind, FaultSet, MemoryLevelUsage, Platform,
    PlatformError, RecoveryCost,
};
use dabench_model::TrainingWorkload;
use dabench_sim::{CheckpointModel, RetryPolicy};

/// Coarse wall-clock cost of one full WSE compile pass, seconds. Wafer
/// compiles are minutes-long in practice; remap time scales with the
/// number of placement attempts.
const COMPILE_ATTEMPT_S: f64 = 40.0;

/// Re-compile `workload` around the dead fabric in `faults`, returning the
/// compilation and the number of placement attempts it took.
///
/// # Errors
///
/// - [`PlatformError::DeviceFault`] when no healthy columns remain or no
///   budget shrink produces a placement clear of every dead band;
/// - any error the healthy compile path produces (OOM, weight floors).
pub fn compile_degraded(
    spec: &WseSpec,
    params: &WseCompilerParams,
    workload: &TrainingWorkload,
    faults: &FaultSet,
) -> Result<(WseCompilation, u32), PlatformError> {
    let dead_intervals: Vec<(u64, u64)> = faults
        .dead_rects()
        .map(|r| r.column_interval(spec.grid_cols))
        .collect();
    let runs = healthy_runs(spec.grid_cols, &dead_intervals);
    let healthy_cols: u64 = runs.iter().map(|&(s, e)| e - s).sum();
    if healthy_cols == 0 {
        return Err(PlatformError::DeviceFault {
            unit: "pe".to_owned(),
            detail: "every fabric column intersects a dead rectangle".to_owned(),
        });
    }

    let surviving =
        (healthy_cols as f64 / spec.grid_cols as f64) * (1.0 - faults.dead_unit_fraction("pe"));
    let mut budget =
        (params.usable_grid_fraction * spec.pe_count() as f64 * surviving).floor() as u64;
    let mut attempts = 0u32;
    for _ in 0..8 {
        attempts += 1;
        let mut comp = compile(spec, params, workload, Some(budget))?;
        let regions: Vec<(String, u64)> = comp
            .kernels
            .iter()
            .map(|k| (k.kernel.name(), k.total_pes()))
            .collect();
        match Placement::strips_avoiding(&regions, spec.grid_rows, spec.grid_cols, &dead_intervals)
        {
            Some(placement) => {
                comp.placement = placement;
                return Ok((comp, attempts));
            }
            // Fragmented healthy runs: shrink the budget so narrower strips
            // can first-fit into them.
            None => budget = (budget as f64 * 0.95) as u64,
        }
    }
    Err(PlatformError::DeviceFault {
        unit: "pe".to_owned(),
        detail: format!(
            "no placement clears {} dead column band(s) after {attempts} attempts",
            dead_intervals.len()
        ),
    })
}

fn profile_of(
    spec: &WseSpec,
    params: &WseCompilerParams,
    comp: &WseCompilation,
    workload: &TrainingWorkload,
) -> ChipProfile {
    let exec = execute(spec, params, comp, workload);
    ChipProfile {
        unit_usage: vec![("pe".to_owned(), comp.allocated_pes(), comp.chip_pes)],
        tasks: exec.task_profiles.clone(),
        sections: vec![],
        memory: vec![MemoryLevelUsage {
            name: "pe-sram".to_owned(),
            used_bytes: comp.memory.config_bytes + comp.memory.training_bytes,
            capacity_bytes: comp.memory.capacity_bytes,
        }],
        achieved_tflops: exec.achieved_tflops,
        throughput_tokens_per_s: exec.throughput_tokens_per_s,
        step_time_s: exec.step_time_s,
    }
}

impl Degradable for Wse {
    fn fault_kind(&self) -> FaultKind {
        FaultKind::WaferGrid
    }

    fn degrade(
        &self,
        workload: &TrainingWorkload,
        faults: &FaultSet,
    ) -> Result<DegradedProfile, PlatformError> {
        let healthy = self.profile(workload)?;
        if faults.is_empty() {
            return Ok(DegradedProfile {
                degraded: healthy.clone(),
                healthy,
                recovery_cost: RecoveryCost::default(),
            });
        }

        let mut spec = self.wse_spec().clone();
        spec.external_bw_bytes_per_s *= faults.link_retained_fraction();
        let (comp, attempts) = compile_degraded(&spec, self.compiler_params(), workload, faults)?;
        let degraded = profile_of(&spec, self.compiler_params(), &comp, workload);

        let policy = RetryPolicy::default();
        let transient_penalty: f64 = faults
            .transient_stalls()
            .iter()
            .map(|&(_, stall)| policy.retry_penalty_s(stall, 1))
            .sum();
        let recovery_cost = RecoveryCost {
            remap_time_s: if faults.has_permanent() {
                f64::from(attempts) * COMPILE_ATTEMPT_S
            } else {
                0.0
            },
            lost_work_s: transient_penalty
                + if faults.has_permanent() {
                    CheckpointModel::default().expected_lost_work_s()
                } else {
                    0.0
                },
        };
        Ok(DegradedProfile {
            healthy,
            degraded,
            recovery_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::{DeadRect, Fault};
    use dabench_model::{ModelConfig, Precision};

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            256,
            1024,
            Precision::Fp16,
        )
    }

    fn dead_band(col: f64, width: f64) -> Fault {
        Fault::DeadRect(DeadRect {
            col,
            row: 0.0,
            width,
            height: 1.0,
        })
    }

    #[test]
    fn five_percent_dead_degrades_without_error() {
        let wse = Wse::default();
        let faults = FaultSet::new(vec![dead_band(0.4, 0.05)]);
        let d = wse.degrade(&w(24), &faults).unwrap();
        assert!(d.degraded.throughput_tokens_per_s <= d.healthy.throughput_tokens_per_s);
        assert!(d.degraded.throughput_tokens_per_s > 0.0);
        assert!(d.recovery_cost.total_s() > 0.0);
    }

    #[test]
    fn remap_avoids_dead_columns() {
        let spec = WseSpec::cs2();
        let faults = FaultSet::new(vec![dead_band(0.3, 0.1)]);
        let (comp, _) =
            compile_degraded(&spec, &WseCompilerParams::default(), &w(24), &faults).unwrap();
        let dead: Vec<(u64, u64)> = faults
            .dead_rects()
            .map(|r| r.column_interval(spec.grid_cols))
            .collect();
        assert!(!comp.placement.overlaps_any(&dead));
    }

    #[test]
    fn empty_fault_set_is_identity() {
        let wse = Wse::default();
        let d = wse.degrade(&w(12), &FaultSet::default()).unwrap();
        assert_eq!(d.healthy, d.degraded);
        assert_eq!(d.recovery_cost.total_s(), 0.0);
    }

    #[test]
    fn fully_dead_wafer_is_a_device_fault() {
        let wse = Wse::default();
        let faults = FaultSet::new(vec![dead_band(0.0, 1.0)]);
        let err = wse.degrade(&w(12), &faults).unwrap_err();
        assert!(matches!(err, PlatformError::DeviceFault { .. }));
    }

    #[test]
    fn transient_stalls_cost_recovery_but_not_throughput() {
        let wse = Wse::default();
        let faults = FaultSet::new(vec![Fault::TransientStall {
            task_index: 2,
            stall_s: 0.5,
        }]);
        let d = wse.degrade(&w(12), &faults).unwrap();
        assert!(
            (d.degraded.throughput_tokens_per_s - d.healthy.throughput_tokens_per_s).abs()
                / d.healthy.throughput_tokens_per_s
                < 1e-9
        );
        assert!(d.recovery_cost.lost_work_s > 0.5);
        assert_eq!(d.recovery_cost.remap_time_s, 0.0);
    }
}
