//! WSE-2 hardware description and compiler tuning parameters.

use serde::{Deserialize, Serialize};

/// Static hardware description of a wafer-scale engine.
///
/// Defaults ([`WseSpec::cs2`]) follow the CS-2 data sheet: 850,000 PEs,
/// 48 KB SRAM per PE (~40 GB total), 20 PB/s aggregate memory bandwidth and
/// a 220 PB/s Swarm fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseSpec {
    /// PE grid height (rows).
    pub grid_rows: u64,
    /// PE grid width (columns).
    pub grid_cols: u64,
    /// Local SRAM per PE, bytes.
    pub sram_per_pe_bytes: u64,
    /// Peak 16-bit FLOP/s per PE.
    pub peak_flops_per_pe: f64,
    /// Aggregate on-chip memory bandwidth, bytes/second.
    pub mem_bw_bytes_per_s: f64,
    /// Aggregate fabric bandwidth, bytes/second.
    pub fabric_bw_bytes_per_s: f64,
    /// External (host/MemoryX) ingest bandwidth used by weight streaming,
    /// bytes/second.
    pub external_bw_bytes_per_s: f64,
}

impl WseSpec {
    /// The CS-2 / WSE-2 configuration from the vendor data sheet.
    #[must_use]
    pub fn cs2() -> Self {
        Self {
            grid_rows: 850,
            grid_cols: 1000,
            sram_per_pe_bytes: 48 * 1024,
            // 850k PEs × ~1.94 GFLOP/s ≈ 1.65 PFLOP/s peak at 16-bit —
            // consistent with the ~20% efficiency at 327-338 TFLOPs the
            // paper measures.
            peak_flops_per_pe: 1.94e9,
            mem_bw_bytes_per_s: 20e15,
            fabric_bw_bytes_per_s: 220e15,
            external_bw_bytes_per_s: 1.2e12,
        }
    }

    /// The CS-3 / WSE-3 configuration: ~900k PEs, higher per-PE rate, and
    /// the MemoryX-backed external memory that makes weight streaming the
    /// primary large-model mode (the paper defers CS-3 for lack of public
    /// chip-level data; this preset follows the vendor data sheet).
    #[must_use]
    pub fn cs3() -> Self {
        Self {
            grid_rows: 900,
            grid_cols: 1000,
            sram_per_pe_bytes: 48 * 1024,
            peak_flops_per_pe: 2.4e9,
            mem_bw_bytes_per_s: 21e15,
            fabric_bw_bytes_per_s: 214e15,
            external_bw_bytes_per_s: 3.0e12,
        }
    }

    /// Total PE count.
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        self.grid_rows * self.grid_cols
    }

    /// Total on-chip SRAM, bytes.
    #[must_use]
    pub fn total_sram_bytes(&self) -> u64 {
        self.pe_count() * self.sram_per_pe_bytes
    }

    /// Peak chip throughput at 16-bit precision, TFLOP/s.
    #[must_use]
    pub fn peak_tflops(&self) -> f64 {
        self.pe_count() as f64 * self.peak_flops_per_pe / 1e12
    }
}

impl Default for WseSpec {
    fn default() -> Self {
        Self::cs2()
    }
}

/// Tuning constants of the (modelled) Cerebras graph compiler.
///
/// These are *mechanism* parameters — how the elastic allocator, placer and
/// memory layout behave — calibrated once so that the emergent results land
/// in the bands of Table I and Figs. 6/8(a)/9(a) of the paper. Experiments
/// never read paper numbers directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseCompilerParams {
    /// FLOPs-per-token one PE should own before an extra PE stops paying
    /// for its fabric traffic; sets every GEMM kernel's scalability cap
    /// (`cap = flops_per_token / gemm_flops_per_token_per_pe`).
    pub gemm_flops_per_token_per_pe: f64,
    /// Parameters one PE can serve for gather-style kernels (embedding);
    /// their cap is `params / params_per_pe`.
    pub params_per_pe: f64,
    /// Per-PE byte budget for resident weights+grads+optimizer; kernels
    /// get at least `weight_state_bytes / budget` PEs (weights must fit).
    pub weight_bytes_per_pe_budget: f64,
    /// Transmission (routing/fan-out) PEs per computation PE — Fig. 6's
    /// second population.
    pub transmission_ratio: f64,
    /// Fraction of the grid the placer may use (I/O rows and reserved
    /// lanes excluded); drives the 92-93% allocation plateau.
    pub usable_grid_fraction: f64,
    /// Sustained fraction of per-PE peak on GEMM kernels with comfortable
    /// memory.
    pub sustained_gemm_efficiency: f64,
    /// Relative processing rate of data-movement kernels (embedding,
    /// loss) versus GEMM kernels; < 1 makes them the pipeline bottleneck
    /// candidates.
    pub io_kernel_rate_factor: f64,
    /// Per-PE configuration memory: fixed code footprint, bytes.
    pub config_base_bytes: f64,
    /// Per-PE configuration memory: growth per kernel-count², bytes
    /// (routing tables; drives the sharp config growth past ~36 layers
    /// and the compile failure at 78).
    pub config_quadratic_bytes: f64,
    /// Fixed per-PE runtime buffer reservation, bytes.
    pub runtime_reserved_bytes: f64,
    /// Fraction of a kernel's per-item forward activations resident at a
    /// time (the rest is recomputed/streamed through the fabric).
    pub activation_residency_factor: f64,
    /// Free working bytes per PE below which compute efficiency degrades
    /// linearly.
    pub comfort_working_bytes: f64,
    /// Floor of the memory-pressure efficiency factor.
    pub min_memory_efficiency: f64,
    /// Minimum PEs any kernel receives.
    pub min_pes_per_kernel: u64,
    /// Throughput multiplier of the CB16 block format relative to FP16.
    pub cb16_speedup: f64,
    /// Per-replica gradient-allreduce cost coefficient for intra-chip data
    /// parallelism (fraction of step time at two replicas per unit of
    /// `(r-1)/r`).
    pub dp_comm_coefficient: f64,
    /// Extra communication penalty per replica beyond two (placement can
    /// no longer keep all replica pairs adjacent).
    pub dp_distance_penalty: f64,
    /// Whole-grid sustained efficiency in weight-streaming mode (layers
    /// run serially across the full wafer at lower per-PE efficiency).
    pub weight_streaming_efficiency: f64,
}

impl Default for WseCompilerParams {
    fn default() -> Self {
        Self {
            gemm_flops_per_token_per_pe: 1900.0,
            params_per_pe: 1100.0,
            weight_bytes_per_pe_budget: 17.0 * 1024.0,
            transmission_ratio: 0.55,
            usable_grid_fraction: 0.93,
            sustained_gemm_efficiency: 0.40,
            io_kernel_rate_factor: 0.85,
            config_base_bytes: 6.0 * 1024.0,
            config_quadratic_bytes: 0.85,
            runtime_reserved_bytes: 2.0 * 1024.0,
            activation_residency_factor: 0.5,
            comfort_working_bytes: 20.0 * 1024.0,
            min_memory_efficiency: 0.25,
            min_pes_per_kernel: 16,
            cb16_speedup: 1.107,
            dp_comm_coefficient: 0.12,
            dp_distance_penalty: 0.25,
            weight_streaming_efficiency: 0.26,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs2_matches_data_sheet() {
        let s = WseSpec::cs2();
        assert_eq!(s.pe_count(), 850_000);
        // ~40 GB of distributed SRAM (48 KB × 850k ≈ 41.8e9 B).
        assert!((s.total_sram_bytes() as f64 - 40e9).abs() / 40e9 < 0.05);
        // Peak in the paper-consistent band.
        assert!((1500.0..1800.0).contains(&s.peak_tflops()));
    }

    #[test]
    fn cs3_is_a_step_up() {
        let cs2 = WseSpec::cs2();
        let cs3 = WseSpec::cs3();
        assert!(cs3.pe_count() > cs2.pe_count());
        assert!(cs3.peak_tflops() > cs2.peak_tflops());
        assert!(cs3.external_bw_bytes_per_s > cs2.external_bw_bytes_per_s);
    }

    #[test]
    fn defaults_are_sane() {
        let p = WseCompilerParams::default();
        assert!(p.usable_grid_fraction < 1.0);
        assert!(p.transmission_ratio > 0.0);
        assert!(p.sustained_gemm_efficiency <= 1.0);
        assert!(p.min_memory_efficiency < 1.0);
        assert!(p.cb16_speedup > 1.0);
    }
}
