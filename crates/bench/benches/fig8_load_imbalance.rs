//! Regenerates Fig. 8 (load imbalance) and benchmarks both panels.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig8;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig8::render(&fig8::run_layers(), "a"));
    println!("{}", fig8::render(&fig8::run_hidden_sizes(), "b"));
    c.bench_function("fig8_layers", |b| b.iter(|| black_box(fig8::run_layers())));
    c.bench_function("fig8_hidden_sizes", |b| {
        b.iter(|| black_box(fig8::run_hidden_sizes()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
