//! Regenerates Fig. 10 (roofline models) and benchmarks the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig10;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig10::render(&fig10::run()));
    c.bench_function("fig10_roofline", |b| b.iter(|| black_box(fig10::run())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
