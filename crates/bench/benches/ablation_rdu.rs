//! Ablations of the RDU model's design choices: operator fusion and the
//! per-section PCU ceiling.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "\n{}",
        ablations::render(
            "Ablation: RDU operator fusion",
            "fused",
            &ablations::rdu_fusion()
        )
    );
    println!(
        "{}",
        ablations::render(
            "Ablation: RDU per-section PCU ceiling (HS 1600)",
            "ceiling",
            &ablations::rdu_section_ceiling(),
        )
    );
    c.bench_function("ablation_rdu_fusion", |b| {
        b.iter(|| black_box(ablations::rdu_fusion()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
