//! Regenerates Fig. 6 (computation vs transmission PEs) and benchmarks the
//! compile sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig6::render(&fig6::run()));
    c.bench_function("fig6_wse_pe_breakdown", |b| {
        b.iter(|| black_box(fig6::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
