//! Regenerates Table IV (mixed-precision throughput) and benchmarks the
//! precision sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::table4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = table4::run();
    println!("\n{}", table4::render(&rows));
    for device in ["IPU", "WSE", "RDU (7B)"] {
        if let Some(g) = table4::gain(&rows, device) {
            println!("{device}: mixed-precision gain {:+.1}%", 100.0 * g);
        }
    }
    c.bench_function("table4_precision", |b| b.iter(|| black_box(table4::run())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
