//! Regenerates Table III (scalability across all platforms) and benchmarks
//! the full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::table3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = table3::run();
    println!("\n{}", table3::render(&rows));
    c.bench_function("table3_scalability", |b| {
        b.iter(|| black_box(table3::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
