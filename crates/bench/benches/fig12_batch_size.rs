//! Regenerates Fig. 12 (throughput vs batch size) and benchmarks the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig12;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig12::render(&fig12::run()));
    c.bench_function("fig12_batch_size", |b| b.iter(|| black_box(fig12::run())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
