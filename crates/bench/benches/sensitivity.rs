//! Hardware-sensitivity analysis (throughput elasticities per platform).

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::sensitivity;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", sensitivity::render(&sensitivity::run()));
    c.bench_function("sensitivity", |b| b.iter(|| black_box(sensitivity::run())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
