//! Regenerates Fig. 11 (scaling details per platform) and benchmarks the
//! three panels.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig11;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for t in fig11::render(&fig11::run_wse(), &fig11::run_rdu(), &fig11::run_ipu()) {
        println!("\n{t}");
    }
    c.bench_function("fig11_wse_replicas", |b| {
        b.iter(|| black_box(fig11::run_wse()))
    });
    c.bench_function("fig11_rdu_tp", |b| b.iter(|| black_box(fig11::run_rdu())));
    c.bench_function("fig11_ipu_allocations", |b| {
        b.iter(|| black_box(fig11::run_ipu()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
