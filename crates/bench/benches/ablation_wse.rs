//! Ablations of the WSE model's design choices: transmission-PE overhead
//! and config-memory growth (DESIGN.md, "Mechanisms worth spelling out").

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "\n{}",
        ablations::render(
            "Ablation: WSE transmission-PE overhead (24 layers)",
            "ratio",
            &ablations::wse_transmission_ratio(),
        )
    );
    println!(
        "{}",
        ablations::render(
            "Ablation: WSE config-memory growth vs max depth",
            "coef",
            &ablations::wse_config_growth(),
        )
    );
    c.bench_function("ablation_wse_transmission", |b| {
        b.iter(|| black_box(ablations::wse_transmission_ratio()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
