//! Ablation of the IPU model's activation-residency (recompute) choice.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "\n{}",
        ablations::render(
            "Ablation: IPU activation residency vs capacity",
            "residency",
            &ablations::ipu_activation_residency(),
        )
    );
    c.bench_function("ablation_ipu_residency", |b| {
        b.iter(|| black_box(ablations::ipu_activation_residency()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
