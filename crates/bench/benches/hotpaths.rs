//! Criterion mirror of the `dabench bench` macro-suite hot paths: the
//! deep-model WSE compile (the budget-shrink retry loop) and the Tier-1
//! memo-cache lookup, plus its pinned pre-rework replica.
//!
//! The bodies come straight from `dabench::bench_suite::make_body`, so
//! criterion times the *exact* closures the `dabench bench` harness and
//! `BENCH_sweeps.json` report on — no parallel workload definitions to
//! drift apart.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::bench_suite::make_body;
use dabench::core::cache::clear_tier1_cache;

fn bench(c: &mut Criterion) {
    for name in [
        "wse_compile_deep",
        "cache_lookup_hit",
        "cache_lookup_legacy",
    ] {
        // Fresh cache per case: make_body warms what the case expects.
        clear_tier1_cache();
        let mut body = make_body(name);
        c.bench_function(name, |b| b.iter(&mut body));
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
