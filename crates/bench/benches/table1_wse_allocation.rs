//! Regenerates Table I (WSE-2 PE allocation vs decoder layers) and
//! benchmarks the compilation sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = table1::run();
    println!("\n{}", table1::render(&rows));
    c.bench_function("table1_wse_allocation", |b| {
        b.iter(|| black_box(table1::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
