//! Regenerates Fig. 9 (memory/compute interaction on all chips) and
//! benchmarks the four panels.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig9;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tables = fig9::render(
        &fig9::run_wse(),
        &fig9::run_rdu_layers(),
        &fig9::run_rdu_hidden(),
        &fig9::run_ipu(),
    );
    for t in &tables {
        println!("\n{t}");
    }
    c.bench_function("fig9_wse", |b| b.iter(|| black_box(fig9::run_wse())));
    c.bench_function("fig9_rdu_layers", |b| {
        b.iter(|| black_box(fig9::run_rdu_layers()))
    });
    c.bench_function("fig9_ipu", |b| b.iter(|| black_box(fig9::run_ipu())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
