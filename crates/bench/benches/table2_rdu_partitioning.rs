//! Regenerates Table II (O3 partitioning and O1 LM-head sharding) and
//! benchmarks the partitioners.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::table2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (a, b) = table2::render(&table2::run_o3(), &table2::run_shards());
    println!("\n{a}\n{b}");
    c.bench_function("table2_o3_partitioning", |bch| {
        bch.iter(|| black_box(table2::run_o3()))
    });
    c.bench_function("table2_o1_sharding", |bch| {
        bch.iter(|| black_box(table2::run_shards()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
