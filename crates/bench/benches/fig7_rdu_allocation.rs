//! Regenerates Fig. 7 (RDU allocation vs layers and hidden size) and
//! benchmarks both sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use dabench::experiments::fig7;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig7::render(&fig7::run_layers(), "a"));
    println!("{}", fig7::render(&fig7::run_hidden_sizes(), "b"));
    c.bench_function("fig7_layers", |b| b.iter(|| black_box(fig7::run_layers())));
    c.bench_function("fig7_hidden_sizes", |b| {
        b.iter(|| black_box(fig7::run_hidden_sizes()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
