//! Regenerate every table and figure of the paper's evaluation in one run.
//!
//! Run with:
//! ```text
//! cargo run --release --example paper_tables
//! ```

use dabench::experiments::{
    fig10, fig11, fig12, fig6, fig7, fig8, fig9, table1, table2, table3, table4,
};

fn main() {
    println!("{}", table1::render(&table1::run()));

    let (a, b) = table2::render(&table2::run_o3(), &table2::run_shards());
    println!("{a}");
    println!("{b}");

    println!("{}", table3::render(&table3::run()));
    println!("{}", table4::render(&table4::run()));

    println!("{}", fig6::render(&fig6::run()));
    println!("{}", fig7::render(&fig7::run_layers(), "a"));
    println!("{}", fig7::render(&fig7::run_hidden_sizes(), "b"));
    println!("{}", fig8::render(&fig8::run_layers(), "a"));
    println!("{}", fig8::render(&fig8::run_hidden_sizes(), "b"));
    for t in fig9::render(
        &fig9::run_wse(),
        &fig9::run_rdu_layers(),
        &fig9::run_rdu_hidden(),
        &fig9::run_ipu(),
    ) {
        println!("{t}");
    }
    println!("{}", fig10::render(&fig10::run()));
    for t in fig11::render(&fig11::run_wse(), &fig11::run_rdu(), &fig11::run_ipu()) {
        println!("{t}");
    }
    println!("{}", fig12::render(&fig12::run()));
}
