//! Capacity planner: for each platform, find the largest GPT-2-style
//! decoder stack (at hidden size 768) that still maps, and what each
//! platform does when the limit is exceeded — the paper's three memory
//! architectures contrasted head-on.
//!
//! Run with:
//! ```text
//! cargo run --release --example capacity_planner
//! ```

use dabench::core::{ParallelStrategy, Platform, Scalable};
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn probe(layers: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, layers),
        32,
        1024,
        Precision::Fp16,
    )
}

fn max_layers(p: &dyn Platform, limit: u64) -> u64 {
    let mut best = 0;
    for layers in (6..=limit).step_by(6) {
        if p.profile(&probe(layers)).is_ok() {
            best = layers;
        } else {
            break;
        }
    }
    best
}

fn main() {
    println!("Largest resident GPT-2(HS=768) decoder stack per platform:\n");

    let wse = Wse::default();
    let wse_max = max_layers(&wse, 120);
    let params = probe(wse_max).model().parameter_count();
    println!(
        "Cerebras WSE-2 : {wse_max} layers (~{:.0}M params) resident",
        params as f64 / 1e6
    );
    let deep = probe(wse_max + 24);
    if let Ok(s) = wse.scale(&deep, ParallelStrategy::WeightStreaming) {
        println!(
            "                 beyond that: weight streaming keeps training at {:.2e} tokens/s",
            s.throughput_tokens_per_s
        );
    }

    let rdu = Rdu::with_mode(CompilationMode::O3);
    let rdu_max = max_layers(&rdu, 480);
    println!(
        "\nSambaNova SN30 : {rdu_max}+ layers on one RDU (DDR-resident sections; \
         capacity bound is the 512 GB DDR)"
    );
    if let Ok(s) = rdu.scale(
        &TrainingWorkload::new(ModelConfig::llama2_7b(), 8, 4096, Precision::Bf16),
        ParallelStrategy::TensorParallel { degree: 2 },
    ) {
        println!(
            "                 7B-class models: shard with intra-node TP2 → {:.0} tokens/s",
            s.throughput_tokens_per_s
        );
    }

    let ipu = Ipu::default();
    let ipu_max = {
        let mut best = 0;
        for layers in 1..=16 {
            if ipu.profile(&probe(layers)).is_ok() {
                best = layers;
            } else {
                break;
            }
        }
        best
    };
    println!(
        "\nGraphcore IPU  : {ipu_max} layers per IPU (hard SRAM wall — the paper's Fig. 9(d))"
    );
    for (layers, devices) in [(24u64, 8u32), (48, 16)] {
        match ipu.scale(
            &probe(layers),
            ParallelStrategy::PipelineParallel { devices },
        ) {
            Ok(s) => println!(
                "                 {layers} layers need {devices} IPUs (pipeline) → {:.2e} tokens/s",
                s.throughput_tokens_per_s
            ),
            Err(e) => println!("                 {layers} layers on {devices} IPUs: {e}"),
        }
    }

    println!(
        "\nSummary: the WSE trades depth against its on-chip SRAM (config data \
         crowds out training state), the RDU converts capacity into DDR traffic \
         (throughput, not feasibility, degrades), and the IPU must scale out the \
         moment one device's SRAM is full."
    );
}
