//! Deployment advisor: given a model, query every platform model and print
//! concrete deployment guidance — the paper's stated purpose ("provides
//! guidance for performance optimizations") turned into a tool.
//!
//! Run with:
//! ```text
//! cargo run --example deployment_advisor [small|medium|7b]
//! ```

use dabench::core::{tier2, ParallelStrategy, Platform, Scalable};
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn pick_model(arg: Option<&str>) -> (ModelConfig, u64, u64) {
    match arg.unwrap_or("small") {
        "medium" => (ModelConfig::gpt2_medium(), 128, 1024),
        "7b" => (ModelConfig::llama2_7b(), 8, 4096),
        _ => (ModelConfig::gpt2_small(), 256, 1024),
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let (model, batch, seq) = pick_model(arg.as_deref());
    let workload = TrainingWorkload::new(model, batch, seq, Precision::Fp16);
    println!("Advising deployment for: {workload}\n");

    // --- Cerebras ---
    let wse = Wse::default();
    println!("== Cerebras WSE-2 ==");
    match wse.profile(&workload) {
        Ok(p) => {
            println!(
                "  fits resident: {:.3e} tokens/s at {:.0} TFLOP/s",
                p.throughput_tokens_per_s, p.achieved_tflops
            );
            let mut best = (1u32, p.throughput_tokens_per_s);
            for r in [2u32, 4, 8] {
                if let Ok(s) = wse.scale(&workload, ParallelStrategy::DataParallel { replicas: r })
                {
                    if s.throughput_tokens_per_s > best.1 {
                        best = (r, s.throughput_tokens_per_s);
                    }
                }
            }
            if best.0 > 1 {
                println!(
                    "  → recommend {} data-parallel replicas ({:.3e} tokens/s)",
                    best.0, best.1
                );
            } else {
                println!("  → recommend single-copy pipelined execution");
            }
        }
        Err(e) => {
            println!("  resident compile fails ({e})");
            if let Ok(s) = wse.scale(&workload, ParallelStrategy::WeightStreaming) {
                println!(
                    "  → recommend weight-streaming mode: {:.3e} tokens/s",
                    s.throughput_tokens_per_s
                );
            }
        }
    }
    let sweep = tier2::batch_sweep(&wse, &workload, &[50, 100, 200, 400]);
    if let Some(knee) = sweep
        .iter()
        .filter(|p| p.throughput_tokens_per_s.is_some())
        .map(|p| p.batch_size)
        .find(|&b| b >= 200)
    {
        println!("  → use a global batch ≥ {knee} (pipeline saturation)");
    }
    println!();

    // --- SambaNova ---
    let rdu = Rdu::with_mode(CompilationMode::O3);
    println!("== SambaNova SN30 (O3) ==");
    match rdu.profile(&workload) {
        Ok(p) => {
            println!(
                "  single RDU: {:.3e} tokens/s at {:.1} TFLOP/s",
                p.throughput_tokens_per_s, p.achieved_tflops
            );
            let o1 = Rdu::with_mode(CompilationMode::O1);
            let tp2 = o1.scale(&workload, ParallelStrategy::TensorParallel { degree: 2 });
            let tp4 = o1.scale(&workload, ParallelStrategy::TensorParallel { degree: 4 });
            if let (Ok(t2), Ok(t4)) = (tp2, tp4) {
                if t4.throughput_tokens_per_s < t2.throughput_tokens_per_s {
                    println!(
                        "  → stay within one node (TP2 {:.0} > TP4 {:.0} tokens/s; \
                         cross-machine allreduce dominates)",
                        t2.throughput_tokens_per_s, t4.throughput_tokens_per_s
                    );
                } else {
                    println!("  → scale out: TP4 still gains");
                }
            }
            println!("  → prefer the tuned 16-bit (mixed) flow over default BF16 (+~30%)");
        }
        Err(e) => println!("  fails: {e}"),
    }
    println!();

    // --- Graphcore ---
    let ipu = Ipu::default();
    println!("== Graphcore Bow IPU ==");
    let mut found = None;
    for devices in [2u32, 4, 8, 16, 32, 64] {
        if let Ok(s) = ipu.scale(&workload, ParallelStrategy::PipelineParallel { devices }) {
            found = Some((devices, s));
            break;
        }
    }
    match found {
        Some((devices, s)) => {
            let max_layers = s
                .detail
                .iter()
                .find(|(k, _)| k == "max_layers_per_ipu")
                .map_or(0.0, |(_, v)| *v);
            println!(
                "  minimum pipeline: {devices} IPUs ({max_layers:.0} layers max per IPU), \
                 {:.3e} tokens/s",
                s.throughput_tokens_per_s
            );
            println!("  → balance layer groups: throughput is set by the most loaded IPU");
        }
        None => println!("  no feasible pipeline up to 64 IPUs (model too large per stage)"),
    }
}
