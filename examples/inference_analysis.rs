//! Inference extension: prefill-vs-decode arithmetic intensity under each
//! platform's roofline — why autoregressive decode is memory-bound on
//! every architecture, and roughly what batch size each platform needs to
//! leave that regime. Extends the paper's training-only scope (DESIGN.md).
//!
//! Run with:
//! ```text
//! cargo run --example inference_analysis
//! ```

use dabench::core::metrics::Roofline;
use dabench::core::Platform;
use dabench::ipu::Ipu;
use dabench::model::{InferenceWorkload, ModelConfig, Precision};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn main() {
    let model = ModelConfig::llama2_7b();
    println!("Model: {model}\n");

    println!("== Prefill vs decode arithmetic intensity (batch sweep) ==");
    println!("batch | prefill AI | decode AI (at ctx 512)");
    for batch in [1u64, 4, 16, 64, 256] {
        let w = InferenceWorkload::new(model.clone(), batch, 512, 128, Precision::Fp16)
            .expect("valid dimensions");
        println!(
            "{batch:5} | {:10.0} | {:10.1}",
            w.prefill_cost().intensity,
            w.decode_step_cost(512).intensity
        );
    }
    println!();

    println!("== Decode under each platform's global-memory roofline ==");
    let wse = Wse::default();
    let rdu = Rdu::with_mode(CompilationMode::O3);
    let ipu = Ipu::default();
    let platforms: Vec<&dyn Platform> = vec![&wse, &rdu, &ipu];
    for p in platforms {
        let spec = p.spec();
        let Some(bw) = spec.global_memory().and_then(|m| m.bandwidth_bytes_per_s) else {
            continue;
        };
        let roof = Roofline::new(spec.peak_tflops, bw);
        // Batch size at which decode crosses the ridge (becomes
        // compute-bound): decode AI ≈ batch.
        let ridge = roof.ridge_intensity();
        let w1 = InferenceWorkload::new(model.clone(), 1, 512, 1, Precision::Fp16)
            .expect("valid dimensions");
        let ai1 = w1.decode_step_cost(512).intensity;
        let batch_at_ridge = (ridge / ai1).ceil();
        println!(
            "{:20} ridge {:8.1} FLOPs/B → single-stream decode {} ({:.1} FLOPs/B); \
             compute-bound needs batch ≳ {:.0}",
            p.name(),
            ridge,
            roof.classify(ai1),
            ai1,
            batch_at_ridge
        );
    }
    println!();

    println!("== KV-cache budget per sequence (context 4096, fp16) ==");
    for m in [ModelConfig::llama2_7b(), ModelConfig::llama2_70b()] {
        let w = InferenceWorkload::new(m.clone(), 1, 4096, 1, Precision::Fp16)
            .expect("valid dimensions");
        println!(
            "{:12} {:7.2} GB ({} KV heads)",
            m.name,
            w.kv_cache_bytes_per_seq(4096) as f64 / 1e9,
            m.num_kv_heads
        );
    }
    println!(
        "\nGQA on the 70B model cuts the per-token cache 8×, which is what \
         keeps large-batch decode feasible at all on DDR-backed platforms."
    );
}
