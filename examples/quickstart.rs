//! Quickstart: profile one LLM training workload on every modelled
//! dataflow accelerator with the DABench-LLM two-tier framework.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use dabench::core::{tier1, tier2, Platform};
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn main() {
    // The paper's workhorse probe: a GPT-2 decoder stack (hidden size 768).
    let workload =
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 64, 1024, Precision::Fp16);
    println!("Workload: {workload}\n");

    let wse = Wse::default();
    let rdu = Rdu::with_mode(CompilationMode::O3);
    let ipu = Ipu::default();
    let platforms: Vec<&dyn Platform> = vec![&wse, &rdu, &ipu];

    println!("=== Tier 1: intra-chip profiling ===");
    for p in &platforms {
        match tier1::run(*p, &workload) {
            Ok(r) => {
                println!("--- {} ---", r.platform);
                for (kind, ratio) in &r.allocation {
                    println!("  {kind} allocation ratio : {:.1}%", 100.0 * ratio);
                }
                if let Some(li) = r.load_imbalance {
                    println!("  load imbalance (Eq.3): {li:.3}");
                }
                println!("  achieved              : {:.1} TFLOP/s", r.achieved_tflops);
                println!(
                    "  compute efficiency    : {:.1}% of {:.0} TFLOP/s peak",
                    100.0 * r.compute_efficiency,
                    r.peak_tflops
                );
                if let Some(bound) = r.bound {
                    println!(
                        "  roofline              : {bound} (AI = {:.0} FLOPs/B)",
                        r.arithmetic_intensity
                    );
                }
                println!(
                    "  training throughput   : {:.3e} tokens/s",
                    r.throughput_tokens_per_s
                );
            }
            Err(e) => println!("--- {} --- failed: {e}", p.name()),
        }
        println!();
    }

    println!("=== Tier 2: deployment optimization ===");
    for p in &platforms {
        let report = tier2::run(
            *p,
            &workload,
            &[8, 16, 32, 64, 128, 256],
            &[Precision::Fp32, Precision::Fp16],
        );
        println!("--- {} ---", report.platform);
        if let Some(b) = report.saturation_batch(0.9) {
            println!("  batch reaching 90% of best throughput: {b}");
        }
        if let Some(g) = report.precision_gain() {
            println!("  best-vs-worst precision gain: {:+.1}%", 100.0 * g);
        }
    }
}
