//! WSE-2 scaling study: how deep a GPT-2 stack fits on the wafer, where
//! the allocation plateau sits, what batch size saturates the pipeline,
//! and when to switch to replicas or weight streaming.
//!
//! This is the paper's Cerebras story (Table I, Figs. 6/9(a)/11(a)/12)
//! replayed as a deployment study.
//!
//! Run with:
//! ```text
//! cargo run --example wse_scaling_study
//! ```

use dabench::core::metrics::scaling_efficiency;
use dabench::core::PlatformError;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::wse::{compile, data_parallel, execute, weight_streaming, KernelKind, Wse};

fn probe(layers: u64, batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, layers),
        batch,
        1024,
        Precision::Fp16,
    )
}

fn main() {
    let wse = Wse::default();
    let (spec, params) = (wse.wse_spec(), wse.compiler_params());

    println!("== Depth sweep: allocation, memory and throughput ==");
    println!("layers |  alloc% | attn-kernel PEs | config KB/PE | TFLOP/s");
    let mut deepest_ok = 0;
    for layers in [1u64, 6, 12, 18, 24, 36, 48, 60, 72, 78] {
        let w = probe(layers, 256);
        match compile(spec, params, &w, None) {
            Ok(c) => {
                deepest_ok = layers;
                let e = execute(spec, params, &c, &w);
                let attn = c
                    .kernel(KernelKind::Attention { layer: 0 })
                    .expect("attention kernel");
                println!(
                    "{layers:6} | {:6.1}% | {:15} | {:12.1} | {:7.1}",
                    100.0 * c.allocation_ratio(),
                    attn.comp_pes,
                    attn.config_bytes_per_pe / 1024.0,
                    e.achieved_tflops
                );
            }
            Err(PlatformError::OutOfMemory { level, .. }) => {
                println!("{layers:6} | compile fails: out of memory at `{level}`");
            }
            Err(e) => println!("{layers:6} | compile fails: {e}"),
        }
    }
    println!("→ deepest resident model: {deepest_ok} layers\n");

    println!("== Batch saturation (the ≥200 rule) ==");
    let mut last = 0.0;
    for batch in [25u64, 50, 100, 200, 400, 800] {
        let w = probe(12, batch);
        let c = compile(spec, params, &w, None).expect("12 layers compile");
        let e = execute(spec, params, &c, &w);
        let gain = if last > 0.0 {
            format!(
                "{:+.1}% vs previous",
                100.0 * (e.throughput_tokens_per_s / last - 1.0)
            )
        } else {
            String::new()
        };
        println!(
            "batch {batch:4}: {:.3e} tokens/s  (pipeline eff {:.2})  {gain}",
            e.throughput_tokens_per_s, e.pipeline_efficiency
        );
        last = e.throughput_tokens_per_s;
    }
    println!();

    println!("== Intra-chip data parallelism (gpt2-mini) ==");
    let mini = TrainingWorkload::new(ModelConfig::gpt2_mini(), 256, 1024, Precision::Fp16);
    let base = data_parallel(spec, params, &mini, 1)
        .expect("mini maps")
        .net_tokens_per_s;
    for replicas in [1u32, 2, 4, 8] {
        let plan = data_parallel(spec, params, &mini, replicas).expect("mini replicates");
        let eff = scaling_efficiency(base, plan.net_tokens_per_s, replicas)
            .expect("positive throughputs");
        println!(
            "replicas {replicas}: net {:.3e} tokens/s (comm {:.1}%, scaling eff {:.0}%{})",
            plan.net_tokens_per_s,
            100.0 * plan.communication_fraction,
            100.0 * eff.efficiency,
            eff.serial_fraction
                .map(|e| format!(", Karp-Flatt e={e:.3}"))
                .unwrap_or_default()
        );
    }
    println!();

    println!("== Weight streaming for models past the residency limit ==");
    for layers in [12u64, 96] {
        let w = probe(layers, 256);
        let resident = compile(spec, params, &w, None).is_ok();
        let ws = weight_streaming(spec, params, &w).expect("streaming always maps");
        println!(
            "{layers} layers: resident compile {} | streaming {:.3e} tokens/s (stream share {:.1}%)",
            if resident { "ok" } else { "FAILS" },
            ws.throughput_tokens_per_s,
            100.0 * ws.streaming_fraction
        );
    }
}
