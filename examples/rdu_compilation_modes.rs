//! SambaFlow compilation-mode shoot-out: the same GPT-2 decoder stack
//! compiled in O0 (per-operator sections), O1 (fused modules) and O3
//! (decoder-by-decoder), with the section schedules, DDR traffic and
//! resulting throughput side by side — Sec. III-B and Figs. 7-9 of the
//! paper as a runnable comparison.
//!
//! Run with:
//! ```text
//! cargo run --example rdu_compilation_modes
//! ```

use dabench::core::tier1;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{execute_sections, partition, CompilationMode, Rdu};

fn main() {
    let workload =
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Fp16);
    println!("Workload: {workload}\n");

    for mode in [
        CompilationMode::O0,
        CompilationMode::O1,
        CompilationMode::O3,
    ] {
        let rdu = Rdu::with_mode(mode);
        let sections = partition(&workload, rdu.rdu_spec(), rdu.compiler_params(), mode);
        let exec = execute_sections(&sections, &workload, rdu.rdu_spec(), rdu.compiler_params());
        let report = tier1::run(&rdu, &workload).expect("probe profiles");

        println!("=== mode {mode} ===");
        println!("  sections               : {}", sections.len());
        println!(
            "  DDR traffic per step   : {:.2} GB",
            exec.ddr_bytes_per_step as f64 / 1e9
        );
        println!(
            "  step time              : {:.1} ms ({:.0}% DDR-limited)",
            1e3 * exec.step_time_s,
            100.0 * exec.memory_bound_fraction
        );
        println!(
            "  achieved               : {:.2} TFLOP/s",
            exec.achieved_tflops
        );
        println!(
            "  PCU / PMU allocation   : {:.1}% / {:.1}%  (Eq. 2 weighted)",
            100.0 * report.allocation_of("pcu").unwrap_or(0.0),
            100.0 * report.allocation_of("pmu").unwrap_or(0.0)
        );
        if let Some(li) = report.load_imbalance {
            println!("  load imbalance (Eq. 4) : {li:.3}");
        }

        // The five slowest sections show where the time goes.
        let mut timed: Vec<_> = exec.timings.iter().collect();
        timed.sort_by(|a, b| b.runtime_s.partial_cmp(&a.runtime_s).expect("finite"));
        println!("  slowest sections:");
        for t in timed.iter().take(5) {
            println!(
                "    {:32} {:8.2} ms (compute {:.2} ms, ddr {:.2} ms per invocation)",
                t.name,
                1e3 * t.runtime_s,
                1e3 * t.compute_time_s,
                1e3 * t.ddr_time_s
            );
        }
        println!();
    }

    println!(
        "Takeaway (paper Sec. V): O0 pays a section load per operator and \
         spills every intermediate tensor to DDR; O1 fuses away most of the \
         traffic; O3 keeps whole decoders resident and wins on throughput, \
         at the cost of coarser operator placement (lower LI)."
    );
}
