//! Workspace facade: re-exports the `dabench` crate for examples and
//! integration tests.
pub use dabench::*;
