#!/usr/bin/env python3
"""TCP client driving the `dabench serve` CI job (.github/workflows/ci.yml).

The daemon speaks one flat JSON object per line (protocol
dabench-serve-v1, string values only), so the stock json module parses
every reply. Three modes mirror the job's steps:

  smoke ADDR REF_TABLE1          ping, execute, cache hit, shed, drain
  crash-phase1 ADDR REF_TABLE1   complete table1, leave fig10 in flight
  crash-phase2 ADDR REF_TABLE1 REF_FIG10
                                 after --resume: byte-identical replay,
                                 adopted job finished, drain

Exit code 0 means every assertion held; any failure raises and exits
nonzero so the CI step fails loudly.
"""

import json
import socket
import sys
import threading
import time

TIMEOUT_S = 120.0


def request(addr, obj, timeout=TIMEOUT_S):
    """One request, one reply, on a fresh connection."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=timeout) as sock:
        sock.sendall((json.dumps(obj) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode())


def submit(addr, job, rid, timeout=TIMEOUT_S):
    return request(addr, {"op": "submit", "id": rid, "job": job}, timeout)


def fire_and_forget_submit(addr, job, rid):
    """Send a submit and keep the connection open without reading the
    reply, from a daemon thread — used to park a job on the daemon."""

    def run():
        host, port = addr.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)), timeout=TIMEOUT_S)
        sock.sendall(
            (json.dumps({"op": "submit", "id": rid, "job": job}) + "\n").encode()
        )
        try:
            sock.recv(4096)  # reply or EOF; either way the job was admitted
        except OSError:
            pass

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t


def poll_stats(addr, predicate, what, deadline_s=30.0):
    start = time.monotonic()
    while True:
        stats = request(addr, {"op": "stats", "id": "poll"})
        if predicate(stats):
            return stats
        if time.monotonic() - start > deadline_s:
            raise AssertionError(f"timed out waiting for {what}: {stats}")
        time.sleep(0.02)


def expect(cond, msg, reply):
    if not cond:
        raise AssertionError(f"{msg}: {reply}")


def read_ref(path):
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def smoke(addr, ref_table1):
    # Daemon runs with --workers 1 --queue 1 and fig6/fig10 sleeping 2 s
    # via DABENCH_INJECT, so the queue saturates on demand.
    pong = request(addr, {"op": "ping", "id": "0"})
    expect(pong.get("status") == "ok", "ping failed", pong)
    expect(pong.get("protocol") == "dabench-serve-v1", "wrong protocol", pong)

    first = submit(addr, "table1", "1")
    expect(first.get("status") == "ok", "table1 failed", first)
    expect(first.get("source") == "executed", "expected a cold execution", first)
    expect(first.get("data") == read_ref(ref_table1), "table1 bytes differ", first)

    second = submit(addr, "table1", "2")
    expect(second.get("source") == "cache", "expected a cache hit", second)
    expect(second.get("data") == first.get("data"), "cache changed the bytes", second)

    # Park fig6 in the single worker, fill the one queue slot with
    # fig10, then a third submit must shed fast instead of blocking.
    fire_and_forget_submit(addr, "fig6", "3")
    poll_stats(
        addr,
        lambda s: s.get("accepted") == "2" and s.get("queued") == "0",
        "fig6 in flight",
    )
    fire_and_forget_submit(addr, "fig10", "4")
    poll_stats(addr, lambda s: s.get("queued") == "1", "fig10 queued")

    start = time.monotonic()
    shed = submit(addr, "fig12", "5")
    elapsed = time.monotonic() - start
    expect(shed.get("status") == "shed", "expected a shed", shed)
    expect(shed.get("reason") == "queue full", "wrong shed reason", shed)
    expect("retry_after_ms" in shed, "shed without a retry hint", shed)
    expect(elapsed < 2.0, f"shed took {elapsed:.2f}s, admission blocked", shed)

    # Cache hits keep flowing while the queue is saturated.
    cached = submit(addr, "table1", "6")
    expect(cached.get("source") == "cache", "saturation starved the cache", cached)

    bad = submit(addr, "not-a-job", "7")
    expect(bad.get("status") == "error", "unknown job accepted", bad)

    stats = poll_stats(
        addr, lambda s: s.get("completed") == "3", "fig6/fig10 to finish"
    )
    expect(int(stats.get("cache_hits", "0")) >= 2, "no cache hits counted", stats)
    expect(stats.get("shed") == "1", "shed not counted", stats)

    done = request(addr, {"op": "drain", "id": "8"})
    expect(done.get("draining") == "true", "drain refused", done)
    print("smoke ok")


def crash_phase1(addr, ref_table1):
    first = submit(addr, "table1", "1")
    expect(first.get("status") == "ok", "table1 failed", first)
    expect(first.get("data") == read_ref(ref_table1), "table1 bytes differ", first)

    # fig10 sleeps 300 s under DABENCH_INJECT; once stats show it
    # admitted and in flight it is journaled `accepted`, and the
    # workflow SIGKILLs the daemon on top of it.
    fire_and_forget_submit(addr, "fig10", "2")
    poll_stats(
        addr,
        lambda s: s.get("accepted") == "2" and s.get("queued") == "0",
        "fig10 in flight",
    )
    print("crash-phase1 ok: table1 journaled, fig10 in flight")


def crash_phase2(addr, ref_table1, ref_fig10):
    # Completed work replays from the journal, byte-identically, without
    # re-execution.
    replayed = submit(addr, "table1", "1")
    expect(replayed.get("status") == "ok", "replay failed", replayed)
    expect(replayed.get("source") == "cache", "replay re-executed", replayed)
    expect(
        replayed.get("data") == read_ref(ref_table1), "replay bytes differ", replayed
    )

    # The orphaned fig10 was re-adopted; wait for it, then check the
    # re-run produced the reference bytes.
    poll_stats(addr, lambda s: s.get("adopted") == "1", "fig10 adoption", 60.0)
    adopted = submit(addr, "fig10", "2")
    expect(adopted.get("status") == "ok", "adopted job failed", adopted)
    expect(adopted.get("data") == read_ref(ref_fig10), "fig10 bytes differ", adopted)

    done = request(addr, {"op": "drain", "id": "3"})
    expect(done.get("draining") == "true", "drain refused", done)
    print("crash-phase2 ok: byte-identical replay, adopted job finished")


def main():
    mode, addr = sys.argv[1], sys.argv[2]
    if mode == "smoke":
        smoke(addr, sys.argv[3])
    elif mode == "crash-phase1":
        crash_phase1(addr, sys.argv[3])
    elif mode == "crash-phase2":
        crash_phase2(addr, sys.argv[3], sys.argv[4])
    else:
        sys.exit(f"unknown mode {mode!r}")


if __name__ == "__main__":
    main()
