//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A source of sampled values (the stub counterpart of
/// `proptest::strategy::Strategy`; sampling only, no shrinking).
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// An empty union; populate with [`Union::or`].
    #[must_use]
    pub fn empty() -> Self {
        Self {
            options: Vec::new(),
        }
    }

    /// Add an option.
    #[must_use]
    pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs an option");
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
