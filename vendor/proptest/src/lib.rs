//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, range strategies, tuple strategies, `prop_map`,
//! `prop::collection::vec` and `ProptestConfig::with_cases` — on top of a
//! deterministic splitmix64 sampler (no shrinking). Each test function gets
//! a seed derived from its own name, so failures reproduce across runs.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — sized collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a half-open `start..end` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs, including `prop` as a crate alias
/// (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Choose uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strategy))+
    };
}

/// Define deterministic sampling property tests (see module docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest `{}` failed at case {case}/{}: {e}",
                            stringify!($name), config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
