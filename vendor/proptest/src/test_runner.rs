//! Deterministic test driver: configuration, RNG and case errors.

use std::fmt;

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` sampled cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Create a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator; the seed is derived from the test
/// function's name so every test samples its own reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Seed directly.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
