//! Offline stand-in for `serde`.
//!
//! The workspace vendors its external dependencies so it builds with no
//! network access. The framework uses `Serialize`/`Deserialize` purely as
//! derive markers on its report/profile types — nothing is serialized at
//! runtime — so the traits here are empty markers with blanket impls, and
//! the re-exported derives (see `serde_derive`) expand to nothing.
//!
//! Swapping the real `serde` back in is a one-line change in the workspace
//! `Cargo.toml`; no source edits are required.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
