//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's bench targets compiling (and runnable as smoke
//! tests) without network access: `Bencher::iter` invokes the closure once
//! and reports wall-clock time instead of collecting statistics.

use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Stub benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` once under `id`, printing the elapsed time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iterations: 0 };
        let start = Instant::now();
        f(&mut b);
        println!(
            "bench {id}: {:?} ({} iteration(s), single-shot stub)",
            start.elapsed(),
            b.iterations
        );
        self
    }
}

/// Stub bencher: runs the measured closure exactly once.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    /// Run `f` once (a real criterion would sample it many times).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.iterations += 1;
        black_box(f());
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
