//! Offline stand-in for `serde_derive`.
//!
//! The repository pins its external dependencies to vendored stubs so the
//! workspace builds without network access. The framework only ever uses
//! `#[derive(Serialize, Deserialize)]` as a marker (no data is serialized
//! at runtime), so the derives expand to nothing; the `serde` stub crate
//! provides blanket trait impls that satisfy any bound.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
